// Command riskpipeline runs the full three-stage risk analytics
// pipeline — catastrophe modelling, portfolio aggregate analysis, and
// dynamic financial analysis — and prints per-stage cost, the data
// burst between stages, and the final risk reports.
//
// Besides the default fused run, -mode splits the pipeline across OS
// processes at the spilled-YELT boundary: "-mode spill -dir D" runs
// stage 1 and writes the trial shards + manifest under D, then a
// separate "-mode aggregate -dir D" invocation re-attaches to the
// shards and runs stages 2–3 over them — the paper's write-once/
// scan-many file lifecycle across real process boundaries, with
// bit-identical results to the fused run.
//
// -cube-dims materializes the warehouse cube over those dimensions
// while stage 2 runs (a "warehouse" stage line appears in the table),
// and -cube-query prints one pre-computed cell, e.g.
// -cube-dims region,lob -cube-query region=coastal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/yelt"
)

func main() {
	var (
		mode      = flag.String("mode", "run", "run = fused pipeline; spill = stage 1 + shard write into -dir, no aggregation; aggregate = re-attach to -dir shards and run stages 2-3")
		dir       = flag.String("dir", "", "spill store directory (required for -mode spill/aggregate; optional shard-keeping dir for -spill)")
		events    = flag.Int("events", 10_000, "stochastic catalogue size")
		contracts = flag.Int("contracts", 16, "number of reinsurance contracts")
		locations = flag.Int("locations", 300, "locations per contract")
		trials    = flag.Int("trials", 100_000, "pre-simulated trial years (ignored by -mode aggregate: the shards decide)")
		sampling  = flag.Bool("sampling", true, "secondary-uncertainty sampling in stage 2")
		seed      = flag.Uint64("seed", 1, "master seed")
		rho       = flag.Float64("rho", 0.25, "DFA copula equicorrelation")
		workers   = flag.Int("workers", 0, "parallelism bound (0 = all cores)")
		engine    = flag.String("engine", "parallel", "stage-2 engine: sequential|parallel|mapreduce|reinstatements")
		kernel    = flag.String("kernel", "blocked", "stage-2 trial-kernel layout: blocked|flat|indexed (bit-identical results)")
		block     = flag.Int("block", 0, "blocked-kernel trial-block size (0 = engine default)")
		streaming = flag.Bool("stream", false, "fuse stage-2 YELT generation into the engine (bounded memory, bit-identical results)")
		batch     = flag.Int("batch", 0, "streaming trial-batch size per worker (0 = engine default)")
		spill     = flag.Bool("spill", false, "spill the generated trial stream into diskstore shards and run stage 2 over the shards (implies -stream)")
		parts     = flag.Int("parts", 0, "spill shard count (0 = derived from the trial count)")
		nodes     = flag.Int("nodes", 0, "spill store storage-node count (0 = default)")
		placement = flag.String("placement", "affine", "mapreduce mapper placement over spilled shards: affine|blind|uniform (bit-identical results)")
		provision = flag.String("provision", "", "per-stage worker provisioning policy: static:N, elastic:N, or degraded:K:POLICY (empty = static -workers bound)")
		replicas  = flag.Int("replicas", 0, "spill replication factor: each shard written to this many storage nodes (<=1 = none)")
		chaos     = flag.String("chaos", "", "deterministic fault injection into stage 2, e.g. rate=0.1,shard=3@2,kill=1@4,delay=2@50ms (bit-identical results)")
		faultSeed = flag.Uint64("fault-seed", 0, "fault-plan seed (0 = -seed)")
		speculate = flag.Bool("speculate", false, "speculative re-execution of straggling map tasks (mapreduce engine)")
		cubeDims  = flag.String("cube-dims", "", "comma-separated warehouse cube dimensions (e.g. region,lob); empty skips the cube")
		cubeQuery = flag.String("cube-query", "", "print one cube cell, as dim=value pairs joined by commas (requires -cube-dims)")
	)
	flag.Parse()

	cubeFilter, err := parseCubeQuery(*cubeQuery)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
		os.Exit(2)
	}
	if cubeFilter != nil && *cubeDims == "" {
		fmt.Fprintln(os.Stderr, "riskpipeline: -cube-query requires -cube-dims")
		os.Exit(2)
	}

	var place aggregate.Placement
	switch *placement {
	case "affine":
		place = aggregate.PlaceAffine
	case "blind":
		place = aggregate.PlaceBlind
	case "uniform":
		place = aggregate.PlaceUniform
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	var eng aggregate.Engine
	var reinst *aggregate.Reinstatements
	switch *engine {
	case "sequential":
		eng = aggregate.Sequential{}
	case "parallel":
		eng = aggregate.Parallel{}
	case "mapreduce":
		eng = aggregate.MapReduce{Placement: place}
	case "reinstatements":
		reinst = &aggregate.Reinstatements{}
		eng = reinst
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	var kern aggregate.Kernel
	switch *kernel {
	case "blocked":
		kern = aggregate.KernelBlocked
	case "flat":
		kern = aggregate.KernelFlat
	case "indexed":
		kern = aggregate.KernelIndexed
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	policy, err := cluster.ParsePolicy(*provision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
		os.Exit(2)
	}
	fseed := *faultSeed
	if fseed == 0 {
		fseed = *seed
	}
	plan, err := faultinject.Parse(*chaos, fseed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
		os.Exit(2)
	}

	cfg := core.Config{
		Seed:                 *seed,
		NumEvents:            *events,
		NumContracts:         *contracts,
		LocationsPerContract: *locations,
		NumTrials:            *trials,
		Engine:               eng,
		Kernel:               kern,
		TrialBlock:           *block,
		Sampling:             *sampling,
		Streaming:            *streaming,
		BatchTrials:          *batch,
		Spill:                *spill,
		SpillDir:             *dir,
		SpillParts:           *parts,
		SpillNodes:           *nodes,
		SpillReplicas:        *replicas,
		Faults:               plan,
		Speculate:            *speculate,
		Provision:            policy,
		Rho:                  *rho,
		Workers:              *workers,
		TwoLayers:            true,
		CubeDims:             splitDims(*cubeDims),
	}

	ctx := context.Background()
	switch *mode {
	case "run":
	case "spill":
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "riskpipeline: -mode spill requires -dir")
			os.Exit(2)
		}
		p := core.New(cfg)
		if err := p.SpillStage2(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("=== spill stages ===")
		printStages(p.Stages, policy != nil)
		fmt.Printf("shards + manifest committed under %s; aggregate with: riskpipeline -mode aggregate -dir %s\n", *dir, *dir)
		return
	case "aggregate":
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "riskpipeline: -mode aggregate requires -dir")
			os.Exit(2)
		}
		cfg.SpillAttach = true
		cfg.Spill = false
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	p := core.New(cfg)
	rep, err := p.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("=== pipeline stages ===")
	printStages(rep.Stages, policy != nil)
	var stage1, stage2 float64
	for _, s := range rep.Stages {
		switch s.Name {
		case "risk-modelling":
			stage1 = float64(s.OutputBytes)
		case "portfolio-risk":
			stage2 = float64(s.OutputBytes)
		}
	}
	fmt.Printf("stage-1 → stage-2 data burst: %.1fx\n", stage2/stage1)
	if *streaming || *spill || *mode == "aggregate" {
		fmt.Printf("(streaming stage 2: the portfolio-risk line accounts peak-resident trial bytes, not a materialized YELT)\n")
	}
	if *spill {
		fmt.Printf("(spilled stage 2: the yelt-spill line is the shard write; the engine re-scanned those shards from disk)\n")
	}
	if *mode == "aggregate" {
		fmt.Printf("(two-process stage 2: shards spilled by an earlier process, re-attached via the manifest)\n")
	}
	for _, s := range rep.Stages {
		if f := s.Faults; f.Any() {
			fmt.Printf("fault tolerance (%s): %d map failures recovered by %d retries, %d replica failovers, %d speculative (%d won), %d workers lost\n",
				s.Name, f.MapFailures, f.MapRetries, f.ShardFailovers, f.SpecLaunched, f.SpecWins, f.WorkersLost)
		}
	}
	if res := p.AggResult; res != nil && res.LocalBytes+res.RemoteBytes > 0 {
		total := res.LocalBytes + res.RemoteBytes
		fmt.Printf("shard data motion (%s placement): %.1f%% of %s scanned node-local\n",
			*placement, 100*float64(res.LocalBytes)/float64(total), yelt.HumanBytes(float64(total)))
	}
	if reinst != nil {
		var total float64
		for _, prem := range reinst.LastPremium {
			total += prem
		}
		fmt.Printf("reinstatement premium (standard terms): total=%.0f mean/trial=%.2f\n",
			total, total/float64(len(reinst.LastPremium)))
	}
	if cube := p.Cube; cube != nil {
		fmt.Printf("warehouse cube: %d cells over dims %s (%s resident)\n",
			cube.Cells(), strings.Join(cube.Dims(), ","), yelt.HumanBytes(float64(cube.SizeBytes())))
		if cubeFilter != nil {
			cell, err := cube.Query(cubeFilter)
			if err != nil {
				fmt.Fprintf(os.Stderr, "riskpipeline: cube query: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("=== cube cell %s ===\n", *cubeQuery)
			printSummary(cell.Summary)
		}
	}
	fmt.Println()

	fmt.Println("=== catastrophe book ===")
	printSummary(rep.Catastrophe)
	fmt.Println("=== enterprise (after DFA) ===")
	printSummary(rep.Enterprise)
}

// splitDims parses a comma-separated dimension list, dropping empty
// segments.
func splitDims(s string) []string {
	var dims []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dims = append(dims, d)
		}
	}
	return dims
}

// parseCubeQuery turns "region=coastal,lob=marine" into a warehouse
// Query filter. Empty input means no query.
func parseCubeQuery(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	filter := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed -cube-query pair %q (want dim=value)", pair)
		}
		if _, dup := filter[k]; dup {
			return nil, fmt.Errorf("-cube-query repeats dimension %q", k)
		}
		filter[k] = v
	}
	return filter, nil
}

// printStages prints the stage table; under a provisioning policy it
// adds the allocated-vs-busy processor-time columns the elasticity
// story is about.
func printStages(stages []core.StageReport, elastic bool) {
	if elastic {
		fmt.Printf("%-18s %14s %16s %14s %8s %12s %12s %6s\n",
			"stage", "duration", "output data", "items", "workers", "alloc-psec", "busy-psec", "util")
	} else {
		fmt.Printf("%-18s %14s %16s %14s\n", "stage", "duration", "output data", "items")
	}
	for _, s := range stages {
		if elastic {
			util := 0.0
			if s.AllocatedProcSecs > 0 {
				util = s.BusyProcSecs / s.AllocatedProcSecs
			}
			fmt.Printf("%-18s %14v %16s %14d %8d %12.3f %12.3f %6.2f\n", s.Name, s.Duration.Round(1e6),
				yelt.HumanBytes(float64(s.OutputBytes)), s.Items, s.Workers,
				s.AllocatedProcSecs, s.BusyProcSecs, util)
		} else {
			fmt.Printf("%-18s %14v %16s %14d\n", s.Name, s.Duration.Round(1e6),
				yelt.HumanBytes(float64(s.OutputBytes)), s.Items)
		}
	}
}

func printSummary(s *metrics.Summary) {
	fmt.Print(s.String())
	fmt.Println()
}
