// Command riskpipeline runs the full three-stage risk analytics
// pipeline — catastrophe modelling, portfolio aggregate analysis, and
// dynamic financial analysis — and prints per-stage cost, the data
// burst between stages, and the final risk reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/yelt"
)

func main() {
	var (
		events    = flag.Int("events", 10_000, "stochastic catalogue size")
		contracts = flag.Int("contracts", 16, "number of reinsurance contracts")
		locations = flag.Int("locations", 300, "locations per contract")
		trials    = flag.Int("trials", 100_000, "pre-simulated trial years")
		sampling  = flag.Bool("sampling", true, "secondary-uncertainty sampling in stage 2")
		seed      = flag.Uint64("seed", 1, "master seed")
		rho       = flag.Float64("rho", 0.25, "DFA copula equicorrelation")
		workers   = flag.Int("workers", 0, "parallelism bound (0 = all cores)")
		engine    = flag.String("engine", "parallel", "stage-2 engine: sequential|parallel|mapreduce|reinstatements")
		kernel    = flag.String("kernel", "blocked", "stage-2 trial-kernel layout: blocked|flat|indexed (bit-identical results)")
		block     = flag.Int("block", 0, "blocked-kernel trial-block size (0 = engine default)")
		streaming = flag.Bool("stream", false, "fuse stage-2 YELT generation into the engine (bounded memory, bit-identical results)")
		batch     = flag.Int("batch", 0, "streaming trial-batch size per worker (0 = engine default)")
		spill     = flag.Bool("spill", false, "spill the generated trial stream into diskstore shards and run stage 2 over the shards (implies -stream)")
		parts     = flag.Int("parts", 0, "spill shard count (0 = derived from the trial count)")
	)
	flag.Parse()

	var eng aggregate.Engine
	var reinst *aggregate.Reinstatements
	switch *engine {
	case "sequential":
		eng = aggregate.Sequential{}
	case "parallel":
		eng = aggregate.Parallel{}
	case "mapreduce":
		eng = aggregate.MapReduce{}
	case "reinstatements":
		reinst = &aggregate.Reinstatements{}
		eng = reinst
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	var kern aggregate.Kernel
	switch *kernel {
	case "blocked":
		kern = aggregate.KernelBlocked
	case "flat":
		kern = aggregate.KernelFlat
	case "indexed":
		kern = aggregate.KernelIndexed
	default:
		fmt.Fprintf(os.Stderr, "riskpipeline: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	p := core.New(core.Config{
		Seed:                 *seed,
		NumEvents:            *events,
		NumContracts:         *contracts,
		LocationsPerContract: *locations,
		NumTrials:            *trials,
		Engine:               eng,
		Kernel:               kern,
		TrialBlock:           *block,
		Sampling:             *sampling,
		Streaming:            *streaming,
		BatchTrials:          *batch,
		Spill:                *spill,
		SpillParts:           *parts,
		Rho:                  *rho,
		Workers:              *workers,
		TwoLayers:            true,
	})
	rep, err := p.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "riskpipeline: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("=== pipeline stages ===")
	fmt.Printf("%-18s %14s %16s %14s\n", "stage", "duration", "output data", "items")
	for _, s := range rep.Stages {
		fmt.Printf("%-18s %14v %16s %14d\n", s.Name, s.Duration.Round(1e6),
			yelt.HumanBytes(float64(s.OutputBytes)), s.Items)
	}
	var stage1, stage2 float64
	for _, s := range rep.Stages {
		switch s.Name {
		case "risk-modelling":
			stage1 = float64(s.OutputBytes)
		case "portfolio-risk":
			stage2 = float64(s.OutputBytes)
		}
	}
	fmt.Printf("stage-1 → stage-2 data burst: %.1fx\n", stage2/stage1)
	if *streaming || *spill {
		fmt.Printf("(streaming stage 2: the portfolio-risk line accounts peak-resident trial bytes, not a materialized YELT)\n")
	}
	if *spill {
		fmt.Printf("(spilled stage 2: the yelt-spill line is the shard write; the engine re-scanned those shards from disk)\n")
	}
	if reinst != nil {
		var total float64
		for _, prem := range reinst.LastPremium {
			total += prem
		}
		fmt.Printf("reinstatement premium (standard terms): total=%.0f mean/trial=%.2f\n",
			total, total/float64(len(reinst.LastPremium)))
	}
	fmt.Println()

	fmt.Println("=== catastrophe book ===")
	printSummary(rep.Catastrophe)
	fmt.Println("=== enterprise (after DFA) ===")
	printSummary(rep.Enterprise)
}

func printSummary(s *metrics.Summary) {
	fmt.Print(s.String())
	fmt.Println()
}
