// Command catmodel runs stage 1 only: it generates a stochastic event
// catalogue and synthetic exposure databases, streams event–exposure
// pairs through the hazard/vulnerability/financial modules, and writes
// one Event-Loss Table per contract to disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/catalog"
	"repro/internal/catmodel"
	"repro/internal/exposure"
	"repro/internal/yelt"
)

func main() {
	var (
		events    = flag.Int("events", 10_000, "stochastic catalogue size")
		contracts = flag.Int("contracts", 8, "number of contracts")
		locations = flag.Int("locations", 400, "locations per contract")
		seed      = flag.Uint64("seed", 1, "master seed")
		workers   = flag.Int("workers", 0, "parallelism bound (0 = all cores)")
		out       = flag.String("out", "", "output directory for ELT files (empty = report only)")
	)
	flag.Parse()
	ctx := context.Background()

	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = *events
	cat, err := catalog.Generate(ccfg, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("catalogue: %d events, %.1f expected occurrences/year\n", cat.Len(), cat.TotalRate())

	eng := catmodel.New()
	eng.Workers = *workers
	start := time.Now()
	var totalRecords int
	var totalBytes int64
	for c := 0; c < *contracts; c++ {
		ecfg := exposure.DefaultConfig()
		ecfg.NumLocations = *locations
		db, err := exposure.Generate(ecfg, *seed+uint64(1000+c))
		if err != nil {
			fail(err)
		}
		tbl, err := eng.Run(ctx, cat, db, uint32(c+1))
		if err != nil {
			fail(err)
		}
		totalRecords += tbl.Len()
		totalBytes += tbl.SizeBytes()
		fmt.Printf("contract %2d: TIV %14.0f  ELT %6d events  E[L] %14.0f\n",
			c+1, db.TotalValue(), tbl.Len(), tbl.ExpectedLoss())
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*out, fmt.Sprintf("contract-%03d.elt", c+1))
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if _, err := tbl.WriteTo(f); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
	}
	fmt.Printf("stage 1 complete: %d ELT records (%s) in %v\n",
		totalRecords, yelt.HumanBytes(float64(totalBytes)), time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "catmodel: %v\n", err)
	os.Exit(1)
}
