// Command dfarun runs stage 3 only: it builds a catastrophe YLT from
// a quick stage-1+2 pass, then integrates it with the six standard
// enterprise risk sources under a Gaussian copula and reports the
// enterprise risk profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/aggregate"
	"repro/internal/dfa"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/yelt"
)

func main() {
	var (
		trials  = flag.Int("trials", 100_000, "trial years")
		seed    = flag.Uint64("seed", 1, "master seed")
		rho     = flag.Float64("rho", 0.25, "copula equicorrelation across risks")
		workers = flag.Int("workers", 0, "parallelism bound (0 = all cores)")
	)
	flag.Parse()
	ctx := context.Background()

	s, err := synth.Build(ctx, synth.Params{
		Seed: *seed, NumEvents: 5_000, NumContracts: 8,
		LocationsPerContract: 200, NumTrials: *trials,
		MeanEventsPerYear: 10, TwoLayers: true, Workers: *workers,
	})
	if err != nil {
		fail(err)
	}
	res, err := (aggregate.Parallel{}).Run(ctx,
		&aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio},
		aggregate.Config{Seed: *seed + 13, Sampling: true, Workers: *workers})
	if err != nil {
		fail(err)
	}
	cat := res.Portfolio

	ig := &dfa.Integrator{Sources: dfa.StandardSources(cat.Mean())}
	start := time.Now()
	dres, err := ig.Run(ctx, cat, dfa.Config{Seed: *seed + 29, Rho: *rho, Workers: *workers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("integrated %d sources over %d trials in %v; total data %s\n\n",
		len(dres.PerSource), cat.NumTrials(), time.Since(start).Round(time.Millisecond),
		yelt.HumanBytes(float64(dres.TotalBytes)))

	fmt.Printf("%-16s %16s %16s\n", "risk source", "mean loss", "99% VaR")
	for _, t := range dres.PerSource {
		v, err := metrics.VaR(t.Agg, 0.99)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-16s %16.0f %16.0f\n", t.Name, t.Mean(), v)
	}
	fmt.Println()
	for _, tbl := range []struct {
		name string
		sum  func() (*metrics.Summary, error)
	}{
		{"catastrophe", func() (*metrics.Summary, error) { return metrics.Summarize(cat) }},
		{"enterprise", func() (*metrics.Summary, error) { return metrics.Summarize(dres.Enterprise) }},
	} {
		s, err := tbl.sum()
		if err != nil {
			fail(err)
		}
		fmt.Printf("=== %s ===\n%s\n", tbl.name, s)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dfarun: %v\n", err)
	os.Exit(1)
}
