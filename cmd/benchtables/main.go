// Command benchtables regenerates the tables for every experiment
// E1–E18 in EXPERIMENTS.md — the quantitative claims of Varghese &
// Rau-Chaplin (SC 2012) reproduced on this machine, plus the
// streaming-stage-2 memory envelope (E10), the partitioned
// (spill + MapReduce) stage 2 (E11), the flat SoA trial kernel (E12),
// the flat SoA year-state kernel for reinstatements (E13), the
// blocked trial kernel with the two-lifetime device arena (E14), the
// real-time quote serving tier under calm/active/burst load (E15),
// the locality-aware distributed stage 2 — shard-affine mapper
// placement × process topology plus elastic provisioning (E16) — and
// the fault-tolerant stage 2: deterministic chaos over replicated
// shards with retries, replica failover, and speculation (E17), and
// the incrementally-built, delta-updatable warehouse cube with served
// queries (E18).
//
// Usage:
//
//	benchtables [-e all|1,2,...] [-quick] [-workers N] [-seed S] [-json FILE]
//
// -json additionally writes the run's measurements as a
// machine-readable document (ns/op, bytes, speedups per experiment
// row) — the format CI tracks as the BENCH_E10.json … BENCH_E18.json
// artifacts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/aggregate"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/diskstore"
	"repro/internal/faultinject"
	"repro/internal/gpusim"
	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/mapreduce"
	"repro/internal/memstore"
	"repro/internal/metrics"
	"repro/internal/rdbms"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/synth"
	"repro/internal/warehouse"
	"repro/internal/yelt"
	"repro/internal/ylt"
	"repro/risk"
)

func devDefault() gpusim.Config { return gpusim.DefaultConfig() }

// singleContract builds a one-contract portfolio view over a scenario.
func singleContract(s *synth.Scenario, i int) *layers.Portfolio {
	return &layers.Portfolio{Contracts: []layers.Contract{{
		ID:       s.Portfolio.Contracts[i].ID,
		ELTIndex: 0,
		Layers:   s.Portfolio.Contracts[i].Layers,
	}}}
}

var (
	flagExperiments = flag.String("e", "all", "experiments to run: 'all' or comma list like '1,4,5'")
	flagQuick       = flag.Bool("quick", false, "smaller sizes for a fast smoke run")
	flagWorkers     = flag.Int("workers", 0, "worker bound (0 = all cores)")
	flagSeed        = flag.Uint64("seed", 42, "master seed")
	flagJSON        = flag.String("json", "", "also write machine-readable results to this file")
)

// benchRecord is one machine-readable measurement of a benchtables
// run — a row of the -json document CI tracks across commits.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	Bytes      int64   `json:"bytes,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
}

// benchRecords starts non-nil so a -json run over experiments that
// record nothing still writes "results": [] rather than null.
var benchRecords = []benchRecord{}

// record appends one measurement to the -json document (cheap enough
// to call unconditionally; the document is only written when -json is
// set).
func record(exp, name string, d time.Duration, bytes int64, speedup float64) {
	benchRecords = append(benchRecords, benchRecord{
		Experiment: exp, Name: name,
		NsPerOp: float64(d.Nanoseconds()),
		Bytes:   bytes, Speedup: speedup,
	})
}

func writeJSON(path string) error {
	doc := struct {
		CPUs    int           `json:"cpus"`
		Quick   bool          `json:"quick"`
		Seed    uint64        `json:"seed"`
		Results []benchRecord `json:"results"`
	}{runtime.NumCPU(), *flagQuick, *flagSeed, benchRecords}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	flag.Parse()
	ctx := context.Background()

	want := map[int]bool{}
	if *flagExperiments == "all" {
		for i := 1; i <= 18; i++ {
			want[i] = true
		}
	} else {
		for _, tok := range strings.Split(*flagExperiments, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 || n > 18 {
				fmt.Fprintf(os.Stderr, "benchtables: bad experiment %q\n", tok)
				os.Exit(2)
			}
			want[n] = true
		}
	}

	fmt.Printf("# benchtables — %d logical CPUs, quick=%v, seed=%d\n\n",
		runtime.NumCPU(), *flagQuick, *flagSeed)

	runners := map[int]func(context.Context) error{
		1: e1Speedup, 2: e2RealtimePricing, 3: e3DataVolumes,
		4: e4Chunking, 5: e5ScanVsRandom, 6: e6MemoryVsMapReduce,
		7: e7Elasticity, 8: e8TrialsSweep, 9: e9DFA,
		10: e10StreamingEnvelope,
		11: e11PartitionedStage2,
		12: e12FlatKernel,
		13: e13ReinstatementsKernel,
		14: e14BlockedKernel,
		15: e15QuoteService,
		16: e16LocalityPlacement,
		17: e17FaultTolerance,
		18: e18WarehouseCube,
	}
	keys := make([]int, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := runners[k](ctx); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: E%d: %v\n", k, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *flagJSON != "" {
		if err := writeJSON(*flagJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: writing %s: %v\n", *flagJSON, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s\n", len(benchRecords), *flagJSON)
	}
}

func scenario(ctx context.Context, trials int, occOnly bool) (*synth.Scenario, error) {
	p := synth.Params{
		Seed:                 *flagSeed,
		NumEvents:            10_000,
		NumContracts:         16,
		LocationsPerContract: 250,
		NumTrials:            trials,
		MeanEventsPerYear:    10,
		OccurrenceOnly:       occOnly,
		TwoLayers:            true,
		Workers:              *flagWorkers,
	}
	if *flagQuick {
		p.NumEvents = 2_000
		p.NumContracts = 6
		p.LocationsPerContract = 100
	}
	return synth.Build(ctx, p)
}

func aggInput(s *synth.Scenario) *aggregate.Input {
	return &aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
}

// E1 — parallel aggregate analysis vs the sequential baseline (the
// paper reports 15× for its GPU engine vs sequential CPU).
func e1Speedup(ctx context.Context) error {
	trials := 200_000
	if *flagQuick {
		trials = 20_000
	}
	fmt.Printf("## E1 — aggregate-analysis speedup vs sequential (%d trials, sampling on)\n", trials)
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	in := aggInput(s)
	// Pre-build the shared index so no engine's timing window pays the
	// pre-join that the others then reuse.
	if _, err := in.EnsureIndex(); err != nil {
		return err
	}

	t0 := time.Now()
	if _, err := (aggregate.Sequential{}).Run(ctx, in, aggregate.Config{Seed: 1, Sampling: true}); err != nil {
		return err
	}
	seqDur := time.Since(t0)
	fmt.Printf("%-22s %12s %10s\n", "engine", "time", "speedup")
	fmt.Printf("%-22s %12v %10s\n", "sequential", seqDur.Round(time.Millisecond), "1.0x")

	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		t0 = time.Now()
		if _, err := (aggregate.Parallel{}).Run(ctx, in, aggregate.Config{Seed: 1, Sampling: true, Workers: w}); err != nil {
			return err
		}
		d := time.Since(t0)
		fmt.Printf("%-22s %12v %9.1fx\n", fmt.Sprintf("parallel (%d workers)", w),
			d.Round(time.Millisecond), float64(seqDur)/float64(d))
	}

	// Device-modeled comparison (the paper's actual GPU-vs-CPU shape):
	// modeled chunked device time vs a single-SM global-only device.
	sOcc, err := scenario(ctx, trials/4, true)
	if err != nil {
		return err
	}
	inOcc := aggInput(sOcc)
	chunked := &aggregate.Chunked{}
	if _, err := chunked.Run(ctx, inOcc, aggregate.Config{}); err != nil {
		return err
	}
	devCfg := devDefault()
	chunkSec := chunked.LastStats.ModeledSeconds(devCfg)
	naive1 := &aggregate.Chunked{Naive: true}
	if _, err := naive1.Run(ctx, inOcc, aggregate.Config{}); err != nil {
		return err
	}
	oneSM := devCfg
	oneSM.NumSMs = 1
	scalarSec := naive1.LastStats.ModeledSeconds(oneSM)
	fmt.Printf("%-22s %12s %9.1fx   (cost-model cycles: many-core chunked vs 1-SM scalar)\n",
		"device model", fmtSec(chunkSec), scalarSec/chunkSec)
	return nil
}

// E2 — the million-trial single-contract quote (paper: ~25 s,
// real-time pricing).
func e2RealtimePricing(ctx context.Context) error {
	trials := 1_000_000
	if *flagQuick {
		trials = 100_000
	}
	fmt.Printf("## E2 — 1M-trial single-contract aggregate simulation (paper: ~25 s on 2012 GPU)\n")
	s, err := scenario(ctx, 1000, false) // trials replaced below
	if err != nil {
		return err
	}
	y, err := yelt.Generate(ctx, s.Catalog, yelt.Config{NumTrials: trials, Workers: *flagWorkers}, *flagSeed+5)
	if err != nil {
		return err
	}
	in := &aggregate.Input{
		YELT:      y,
		ELTs:      s.ELTs[:1],
		Portfolio: singleContract(s, 0),
	}
	if _, err := in.EnsureIndex(); err != nil {
		return err
	}
	for _, eng := range []aggregate.Engine{aggregate.Sequential{}, aggregate.Parallel{}} {
		t0 := time.Now()
		res, err := eng.Run(ctx, in, aggregate.Config{Seed: 2, Sampling: true, Workers: *flagWorkers})
		if err != nil {
			return err
		}
		d := time.Since(t0)
		sum, err := metrics.Summarize(res.Portfolio)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %d trials in %10v  (%.0f trials/s)  AAL=%.0f TVaR99=%.0f\n",
			eng.Name(), trials, d.Round(time.Millisecond),
			float64(trials)/d.Seconds(), sum.AAL, sum.TVaR99)
	}
	return nil
}

// E3 — the YELLT/YELT/YLT data-volume arithmetic.
func e3DataVolumes(ctx context.Context) error {
	fmt.Printf("## E3 — data volumes (paper: YELLT 5×10^16 entries; YELT 1000× smaller; YLT 1000× smaller again)\n")
	m := yelt.PaperScale()
	fmt.Printf("paper scale: %d contracts × %d events × %d locations × %d trials\n",
		m.Contracts, m.Events, m.Locations, m.Trials)
	fmt.Printf("%-28s %14.3g entries\n", "dense YELLT (paper formula)", m.DenseYELLTEntries())
	fmt.Printf("%-28s %14.3g entries  (%s at 16 B/entry)\n", "occurrence YELLT",
		m.YELLTEntries(), yelt.HumanBytes(yelt.Bytes(m.YELLTEntries(), 16)))
	fmt.Printf("%-28s %14.3g entries  (%s at %d B/entry)\n", "YELT",
		m.YELTEntries(), yelt.HumanBytes(yelt.Bytes(m.YELTEntries(), yelt.EntryBytes)), yelt.EntryBytes)
	fmt.Printf("%-28s %14.3g entries  (%s at 8 B/entry)\n", "YLT",
		m.YLTEntries(), yelt.HumanBytes(yelt.Bytes(m.YLTEntries(), 8)))
	r1, r2 := m.Ratios()
	fmt.Printf("ratios: YELLT/YELT = %.0f, YELT/YLT = %.0f\n", r1, r2)

	trials := 100_000
	if *flagQuick {
		trials = 10_000
	}
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	// The pre-joined loss index is the layout the engines actually scan:
	// report its build cost and footprint next to the YELT/YLT volumes.
	t0 := time.Now()
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		return err
	}
	idxBuild := time.Since(t0)
	in := aggInput(s)
	in.Index = idx
	res, err := (aggregate.Parallel{}).Run(ctx, in, aggregate.Config{Workers: *flagWorkers})
	if err != nil {
		return err
	}
	fmt.Printf("measured (this run): YELT %d occurrences = %s; YLT %d trials = %s; ratio %.0f\n",
		s.YELT.Len(), yelt.HumanBytes(float64(s.YELT.SizeBytes())),
		res.Portfolio.NumTrials(), yelt.HumanBytes(float64(res.Portfolio.SizeBytes())),
		float64(s.YELT.SizeBytes())/float64(res.Portfolio.SizeBytes()))
	fmt.Printf("loss index (pre-joined ELTs): %d events, %d entries = %s, built in %v\n",
		idx.NumRows(), idx.NumEntries(), yelt.HumanBytes(float64(idx.SizeBytes())),
		idxBuild.Round(time.Microsecond))
	return nil
}

// E4 — the chunking ablation on the simulated device.
func e4Chunking(ctx context.Context) error {
	trials := 50_000
	if *flagQuick {
		trials = 10_000
	}
	fmt.Printf("## E4 — shared/constant-memory chunking ablation (modeled device cycles, %d trials)\n", trials)
	s, err := scenario(ctx, trials, true)
	if err != nil {
		return err
	}
	in := aggInput(s)
	devCfg := devDefault()

	chunked := &aggregate.Chunked{}
	if _, err := chunked.Run(ctx, in, aggregate.Config{}); err != nil {
		return err
	}
	naive := &aggregate.Chunked{Naive: true}
	if _, err := naive.Run(ctx, in, aggregate.Config{}); err != nil {
		return err
	}
	c, n := chunked.LastStats, naive.LastStats
	fmt.Printf("%-16s %16s %16s %14s %12s\n", "kernel", "block cycles", "global accesses", "shared acc.", "modeled time")
	fmt.Printf("%-16s %16d %16d %14d %12s\n", "naive-global", n.BlockCycles, n.GlobalAccesses, n.SharedAccesses, fmtSec(n.ModeledSeconds(devCfg)))
	fmt.Printf("%-16s %16d %16d %14d %12s\n", "chunked-shared", c.BlockCycles, c.GlobalAccesses, c.SharedAccesses, fmtSec(c.ModeledSeconds(devCfg)))
	fmt.Printf("chunking advantage: %.1fx fewer block cycles\n", float64(n.BlockCycles)/float64(c.BlockCycles))
	return nil
}

// E5 — scan-oriented access vs indexed random access (the RDBMS
// baseline the paper dismisses).
func e5ScanVsRandom(ctx context.Context) error {
	trials := 200_000
	if *flagQuick {
		trials = 30_000
	}
	fmt.Printf("## E5 — sequential scan vs B-tree random access (%d trial-year lookups)\n", trials)
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	// Load the portfolio loss vector into the row store.
	tbl, err := rdbms.New(1, 64)
	if err != nil {
		return err
	}
	loss := map[uint64]float64{}
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			loss[uint64(r.EventID)] += r.MeanLoss
		}
	}
	for k, v := range loss {
		if err := tbl.Insert(k, []float64{v}); err != nil {
			return err
		}
	}

	// Random access: one indexed Get per YELT occurrence.
	tbl.ResetStats()
	t0 := time.Now()
	var sumRand float64
	for _, occ := range s.YELT.Occs {
		if v, ok := tbl.Get(uint64(occ.EventID)); ok {
			sumRand += v[0]
		}
	}
	randDur := time.Since(t0)
	randPages := tbl.Stats().PageReads

	// Scan: one pass accumulating the same aggregate via a dense
	// event-occurrence count (how scan-oriented engines do it).
	counts := make([]float64, maxEvent(s)+1)
	for _, occ := range s.YELT.Occs {
		counts[occ.EventID]++
	}
	tbl.ResetStats()
	t0 = time.Now()
	var sumScan float64
	if err := tbl.Scan(func(k uint64, vals []float64) error {
		sumScan += vals[0] * counts[k]
		return nil
	}); err != nil {
		return err
	}
	scanDur := time.Since(t0)
	scanPages := tbl.Stats().PageReads

	n := float64(len(s.YELT.Occs))
	fmt.Printf("%-16s %12s %14s %16s\n", "access path", "time", "page reads", "occurrences/s")
	fmt.Printf("%-16s %12v %14d %16.0f\n", "random (B-tree)", randDur.Round(time.Microsecond), randPages, n/randDur.Seconds())
	fmt.Printf("%-16s %12v %14d %16.0f\n", "sequential scan", scanDur.Round(time.Microsecond), scanPages, n/scanDur.Seconds())
	fmt.Printf("scan advantage: %.1fx faster, %.0fx fewer page touches (agreement: %.6g vs %.6g)\n",
		randDur.Seconds()/scanDur.Seconds(), float64(randPages)/float64(scanPages), sumRand, sumScan)
	return nil
}

func maxEvent(s *synth.Scenario) uint32 {
	var m uint32
	for _, o := range s.YELT.Occs {
		if o.EventID > m {
			m = o.EventID
		}
	}
	return m
}

// E6 — in-memory analytics vs MapReduce over distributed files, with
// the memory budget deciding the crossover.
func e6MemoryVsMapReduce(ctx context.Context) error {
	fmt.Printf("## E6 — in-memory vs distributed-file MapReduce (per-trial aggregation)\n")
	sizes := []int{20_000, 100_000, 400_000}
	if *flagQuick {
		sizes = []int{10_000, 50_000}
	}
	// Budget sized so the largest dataset no longer fits — the scaled
	// analogue of the paper's "<1 TB in memory" boundary.
	budget := int64(sizes[len(sizes)-1]) * 10 * 12 / 2
	fmt.Printf("memory budget: %s\n", yelt.HumanBytes(float64(budget)))
	fmt.Printf("%-12s %16s %16s\n", "trials", "in-memory", "mapreduce")

	s, err := scenario(ctx, 1000, false)
	if err != nil {
		return err
	}
	lossVec := portfolioLossVec(s)

	for _, trials := range sizes {
		y, err := yelt.Generate(ctx, s.Catalog, yelt.Config{NumTrials: trials, Workers: *flagWorkers}, *flagSeed+9)
		if err != nil {
			return err
		}
		memCell, memErr := e6InMemory(ctx, y, lossVec, budget)
		mrCell, err := e6MapReduce(ctx, y, lossVec)
		if err != nil {
			return err
		}
		memStr := memCell
		if memErr != nil {
			memStr = "EXCEEDS BUDGET"
		}
		fmt.Printf("%-12d %16s %16s\n", trials, memStr, mrCell)
	}
	return nil
}

func portfolioLossVec(s *synth.Scenario) []float64 {
	var maxID uint32
	for _, e := range s.ELTs {
		if n := e.Len(); n > 0 && e.Records[n-1].EventID > maxID {
			maxID = e.Records[n-1].EventID
		}
	}
	vec := make([]float64, maxID+1)
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			vec[r.EventID] += r.MeanLoss
		}
	}
	return vec
}

func e6InMemory(ctx context.Context, y *yelt.Table, lossVec []float64, budget int64) (string, error) {
	arena := memstore.NewArena(budget)
	tbl := memstore.NewTable(memstore.Schema{
		Float64Cols: []string{"loss"},
		Uint32Cols:  []string{"trial"},
	}, arena, 1<<15)
	t0 := time.Now()
	for trial := 0; trial < y.NumTrials; trial++ {
		for _, occ := range y.OccurrencesOf(trial) {
			var l float64
			if int(occ.EventID) < len(lossVec) {
				l = lossVec[occ.EventID]
			}
			if err := tbl.Append([]float64{l}, []uint32{uint32(trial)}); err != nil {
				tbl.Release()
				return "", err
			}
		}
	}
	sums := make([]float64, y.NumTrials)
	err := tbl.Scan(func(v memstore.ChunkView) error {
		for i := 0; i < v.Rows(); i++ {
			sums[v.U32[0][i]] += v.F64[0][i]
		}
		return nil
	})
	tbl.Release()
	if err != nil {
		return "", err
	}
	return time.Since(t0).Round(time.Millisecond).String(), nil
}

func e6MapReduce(ctx context.Context, y *yelt.Table, lossVec []float64) (string, error) {
	dir, err := os.MkdirTemp("", "e6-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	store, err := diskstore.Create(dir, 4)
	if err != nil {
		return "", err
	}
	t0 := time.Now()
	const parts = 16
	per := (y.NumTrials + parts - 1) / parts
	type split struct{ part, lo, hi int }
	var splits []split
	for p := 0; p < parts; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > y.NumTrials {
			hi = y.NumTrials
		}
		if lo >= hi {
			break
		}
		sub, err := y.Slice(lo, hi)
		if err != nil {
			return "", err
		}
		if err := store.WritePartition("yelt", p, func(w io.Writer) error {
			_, err := sub.WriteTo(w)
			return err
		}); err != nil {
			return "", err
		}
		splits = append(splits, split{p, lo, hi})
	}
	sum := func(_ uint64, vs []float64) (float64, error) {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s, nil
	}
	_, err = mapreduce.Run(ctx, splits,
		func(_ context.Context, sp split, emit func(uint64, float64)) error {
			return store.ReadPartition("yelt", sp.part, func(r io.Reader) error {
				sub, err := yelt.Read(r)
				if err != nil {
					return err
				}
				for trial := 0; trial < sub.NumTrials; trial++ {
					var s float64
					for _, occ := range sub.OccurrencesOf(trial) {
						if int(occ.EventID) < len(lossVec) {
							s += lossVec[occ.EventID]
						}
					}
					emit(uint64(sp.lo+trial), s)
				}
				return nil
			})
		},
		sum, sum, mapreduce.Config{Mappers: *flagWorkers, Reducers: 4})
	if err != nil {
		return "", err
	}
	return time.Since(t0).Round(time.Millisecond).String(), nil
}

// E7 — elastic vs static provisioning over the pipeline's bursty
// demand profile.
func e7Elasticity(_ context.Context) error {
	fmt.Printf("## E7 — bursty processor demand: stage 1 <10 procs, stages 2-3 thousands\n")
	phases := cluster.PipelinePhases(3600) // one processor-hour of stage-1 work
	results, err := cluster.Compare(phases, []cluster.Policy{
		cluster.Static{N: 8},
		cluster.Static{N: 5000},
		cluster.Elastic{Max: 5000},
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %14s %18s %14s\n", "policy", "makespan", "proc-hours billed", "utilization")
	for _, r := range results {
		fmt.Printf("%-18s %14s %18.1f %13.1f%%\n", r.Policy,
			fmtSec(r.Makespan), r.AllocatedSecs/3600, 100*r.Utilization)
	}
	return nil
}

// E8 — runtime vs trial count: the weekly-vs-real-time scaling.
func e8TrialsSweep(ctx context.Context) error {
	fmt.Printf("## E8 — runtime scaling with trial count (weekly batch vs real-time)\n")
	sweep := []int{1_000, 10_000, 100_000, 1_000_000}
	if *flagQuick {
		sweep = []int{1_000, 10_000, 50_000}
	}
	s, err := scenario(ctx, 1000, false)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s %16s\n", "trials", "sequential", "parallel", "par trials/s")
	for _, trials := range sweep {
		y, err := yelt.Generate(ctx, s.Catalog, yelt.Config{NumTrials: trials, Workers: *flagWorkers}, *flagSeed+11)
		if err != nil {
			return err
		}
		in := &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
		if _, err := in.EnsureIndex(); err != nil {
			return err
		}
		t0 := time.Now()
		if _, err := (aggregate.Sequential{}).Run(ctx, in, aggregate.Config{Sampling: true, Seed: 3}); err != nil {
			return err
		}
		seq := time.Since(t0)
		t0 = time.Now()
		if _, err := (aggregate.Parallel{}).Run(ctx, in, aggregate.Config{Sampling: true, Seed: 3, Workers: *flagWorkers}); err != nil {
			return err
		}
		par := time.Since(t0)
		fmt.Printf("%-12d %14v %14v %16.0f\n", trials,
			seq.Round(time.Millisecond), par.Round(time.Millisecond),
			float64(trials)/par.Seconds())
	}
	return nil
}

// E9 — DFA integration: data volume and runtime vs number of risk
// sources, plus the PML/TVaR report that flows to ERM.
func e9DFA(ctx context.Context) error {
	trials := 200_000
	if *flagQuick {
		trials = 50_000
	}
	fmt.Printf("## E9 — DFA integration across K risk sources (%d trials)\n", trials)
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	res, err := (aggregate.Parallel{}).Run(ctx, aggInput(s), aggregate.Config{Workers: *flagWorkers})
	if err != nil {
		return err
	}
	cat := res.Portfolio

	fmt.Printf("%-10s %14s %16s %16s\n", "sources", "time", "total data", "TVaR99")
	for _, k := range []int{2, 6, 12, 24} {
		sources := make([]dfa.Source, 0, k)
		base := dfa.StandardSources(cat.Mean())
		for len(sources) < k {
			sources = append(sources, base[len(sources)%len(base)])
		}
		ig := &dfa.Integrator{Sources: sources}
		t0 := time.Now()
		dres, err := ig.Run(ctx, cat, dfa.Config{Seed: 7, Rho: 0.2, Workers: *flagWorkers})
		if err != nil {
			return err
		}
		d := time.Since(t0)
		tv, err := metrics.TVaR(dres.Enterprise.Agg, 0.99)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %14v %16s %16.0f\n", k, d.Round(time.Millisecond),
			yelt.HumanBytes(float64(dres.TotalBytes)), tv)
	}

	sum, err := metrics.Summarize(cat)
	if err != nil {
		return err
	}
	fmt.Printf("\ncatastrophe book metrics (PML/TVaR as reported to regulators):\n%s", sum)
	return nil
}

// E10 — bounded-memory streaming stage 2: fuse YELT generation into
// the aggregate engine and compare the memory envelope (and runtime)
// against materializing the table first. Results are bit-identical by
// construction (per-trial RNG substreams); the table printed here is
// the memory-envelope claim of the streaming refactor.
func e10StreamingEnvelope(ctx context.Context) error {
	trials := 1_000_000
	if *flagQuick {
		trials = 100_000
	}
	fmt.Printf("## E10 — streaming stage 2 memory envelope (%d trials, parallel engine)\n", trials)
	s, err := scenario(ctx, 1000, false)
	if err != nil {
		return err
	}
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		return err
	}
	// Distinct generation (+7) and sampling (+13) seed offsets, like
	// every other stage-2 call site: sharing one substream would replay
	// the event-draw uniforms as severity draws.
	acfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: true, Workers: *flagWorkers}
	ycfg := yelt.Config{NumTrials: trials, Workers: *flagWorkers}

	// Materialized: pre-simulate, then aggregate (generation included in
	// the timing — the comparison is end-to-end stage 2).
	t0 := time.Now()
	y, err := yelt.Generate(ctx, s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	matIn := &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}
	matRes, err := (aggregate.Parallel{}).Run(ctx, matIn, acfg)
	if err != nil {
		return err
	}
	matDur := time.Since(t0)

	// Streaming: fused generation, bounded batches.
	gen, err := yelt.NewGenerator(s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	t0 = time.Now()
	strIn := &aggregate.Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}
	strRes, err := (aggregate.Parallel{}).Run(ctx, strIn, acfg)
	if err != nil {
		return err
	}
	strDur := time.Since(t0)

	fmt.Printf("%-14s %12s %16s %14s\n", "stage-2 mode", "time", "resident trials", "trials/s")
	fmt.Printf("%-14s %12v %16s %14.0f\n", "materialized", matDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(matRes.PeakResidentBytes)), float64(trials)/matDur.Seconds())
	fmt.Printf("%-14s %12v %16s %14.0f\n", "streaming", strDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(strRes.PeakResidentBytes)), float64(trials)/strDur.Seconds())
	fmt.Printf("memory envelope: %.0fx below the materialized YELT\n",
		float64(matRes.PeakResidentBytes)/float64(strRes.PeakResidentBytes))
	record("E10", "materialized", matDur, matRes.PeakResidentBytes, 0)
	record("E10", "streaming", strDur, strRes.PeakResidentBytes,
		float64(matRes.PeakResidentBytes)/float64(strRes.PeakResidentBytes))
	for t := 0; t < trials; t++ {
		if matRes.Portfolio.Agg[t] != strRes.Portfolio.Agg[t] || matRes.Portfolio.OccMax[t] != strRes.Portfolio.OccMax[t] {
			return fmt.Errorf("E10: streaming diverged from materialized at trial %d", t)
		}
	}
	fmt.Printf("equivalence: all %d trials bit-identical across modes\n", trials)
	return nil
}

// E11 — partitioned stage 2: the MapReduce engine over the three trial
// sources, completing the memory/compute trade the streaming refactor
// opened. Re-derive regenerates trials per mapper read (CPU for
// memory); re-scan generates once, spills trial-range shards into a
// diskstore, and re-reads them (disk for CPU); materialized holds the
// whole table resident (memory for everything). All three are
// bit-identical by construction; the table is the trade.
func e11PartitionedStage2(ctx context.Context) error {
	trials := 1_000_000
	if *flagQuick {
		trials = 100_000
	}
	fmt.Printf("## E11 — partitioned stage 2: re-derive vs re-scan vs materialized (%d trials, mapreduce engine)\n", trials)
	s, err := scenario(ctx, 1000, false)
	if err != nil {
		return err
	}
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		return err
	}
	eng := aggregate.MapReduce{}
	acfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: true, Workers: *flagWorkers}
	ycfg := yelt.Config{NumTrials: trials, Workers: *flagWorkers}

	// Materialized: pre-simulate the table, then map over its views
	// (generation included — the comparison is end-to-end stage 2).
	t0 := time.Now()
	y, err := yelt.Generate(ctx, s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	matRes, err := eng.Run(ctx, &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
	if err != nil {
		return err
	}
	matDur := time.Since(t0)

	// Re-derive: mappers regenerate their trial ranges on demand.
	gen, err := yelt.NewGenerator(s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	t0 = time.Now()
	derRes, err := eng.Run(ctx, &aggregate.Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
	if err != nil {
		return err
	}
	derDur := time.Since(t0)

	// Re-scan: generate once into diskstore shards, mappers re-read.
	dir, err := os.MkdirTemp("", "e11-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	genSpill, err := yelt.NewGenerator(s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	t0 = time.Now()
	ds, err := yelt.SpillToDir(ctx, genSpill, dir, 0, aggregate.DefaultSpillParts(trials), 1, *flagWorkers)
	if err != nil {
		return err
	}
	spillDur := time.Since(t0)
	spillBytes, err := ds.SizeBytes()
	if err != nil {
		return err
	}
	t0 = time.Now()
	scanRes, err := eng.Run(ctx, &aggregate.Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
	if err != nil {
		return err
	}
	scanDur := time.Since(t0)

	fmt.Printf("spill: %d shards on %d nodes, %s written in %v (%.0f trials/s)\n",
		ds.Shards(), ds.Nodes(), yelt.HumanBytes(float64(spillBytes)),
		spillDur.Round(time.Millisecond), float64(trials)/spillDur.Seconds())
	fmt.Printf("%-14s %12s %16s %14s\n", "trial source", "time", "resident trials", "trials/s")
	fmt.Printf("%-14s %12v %16s %14.0f\n", "materialized", matDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(matRes.PeakResidentBytes)), float64(trials)/matDur.Seconds())
	fmt.Printf("%-14s %12v %16s %14.0f\n", "re-derive", derDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(derRes.PeakResidentBytes)), float64(trials)/derDur.Seconds())
	fmt.Printf("%-14s %12v %16s %14.0f   (+%v spill write, %s on disk)\n", "re-scan", scanDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(scanRes.PeakResidentBytes)), float64(trials)/scanDur.Seconds(),
		spillDur.Round(time.Millisecond), yelt.HumanBytes(float64(spillBytes)))
	record("E11", "materialized", matDur, matRes.PeakResidentBytes, 0)
	record("E11", "re-derive", derDur, derRes.PeakResidentBytes, 0)
	record("E11", "re-scan", scanDur, scanRes.PeakResidentBytes, 0)
	for t := 0; t < trials; t++ {
		if matRes.Portfolio.Agg[t] != derRes.Portfolio.Agg[t] || matRes.Portfolio.Agg[t] != scanRes.Portfolio.Agg[t] ||
			matRes.Portfolio.OccMax[t] != derRes.Portfolio.OccMax[t] || matRes.Portfolio.OccMax[t] != scanRes.Portfolio.OccMax[t] {
			return fmt.Errorf("E11: sources diverged at trial %d", t)
		}
	}
	fmt.Printf("equivalence: all %d trials bit-identical across the three sources\n", trials)
	return nil
}

// E12 — the flat SoA trial kernel: pre-applied occurrence recoveries
// and flattened layer terms (lossindex.Flat) vs the indexed kernel it
// replaced vs the pre-index legacy lookup, sampling off and on, at
// two trial counts. Expected mode is where the flattening bites
// hardest: the per-(entry, layer) recovery is a build-time constant,
// so the trial loop collapses to gather-adds. All three kernels are
// verified bit-identical per cell.
func e12FlatKernel(ctx context.Context) error {
	sizes := []int{100_000, 1_000_000}
	if *flagQuick {
		sizes = []int{10_000, 100_000}
	}
	fmt.Printf("## E12 — flat SoA trial kernel vs indexed vs legacy (sequential engine)\n")
	for _, trials := range sizes {
		s, err := scenario(ctx, trials, false)
		if err != nil {
			return err
		}
		in := aggInput(s)
		if _, err := in.EnsureIndex(); err != nil {
			return err
		}
		t0 := time.Now()
		fx, err := in.EnsureFlat()
		if err != nil {
			return err
		}
		flatBuild := time.Since(t0)
		fmt.Printf("\n%d trials — flat layout: %d entries, %d layer slots, %s, built in %v\n",
			trials, fx.NumEntries(), fx.NumLayers(),
			yelt.HumanBytes(float64(fx.SizeBytes())), flatBuild.Round(time.Microsecond))
		fmt.Printf("%-10s %-10s %12s %14s %12s\n", "mode", "kernel", "time", "trials/s", "vs indexed")
		for _, sampling := range []bool{false, true} {
			mode := "expected"
			if sampling {
				mode = "sampling"
			}
			// E12 compares the trial-at-a-time kernels; pin KernelFlat
			// explicitly now that the config default is the blocked
			// kernel (E14 measures that one).
			cfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: sampling, Kernel: aggregate.KernelFlat}
			cfgIdx := cfg
			cfgIdx.Kernel = aggregate.KernelIndexed
			kernels := []struct {
				name string
				run  func() (*aggregate.Result, error)
			}{
				{"flat", func() (*aggregate.Result, error) { return (aggregate.Sequential{}).Run(ctx, in, cfg) }},
				{"indexed", func() (*aggregate.Result, error) { return (aggregate.Sequential{}).Run(ctx, in, cfgIdx) }},
				{"legacy", func() (*aggregate.Result, error) { return (aggregate.LegacyLookup{}).Run(ctx, in, cfg) }},
			}
			results := make([]*aggregate.Result, len(kernels))
			durs := make([]time.Duration, len(kernels))
			for i, k := range kernels {
				t0 := time.Now()
				results[i], err = k.run()
				if err != nil {
					return err
				}
				durs[i] = time.Since(t0)
			}
			idxDur := durs[1]
			for i, k := range kernels {
				spd := idxDur.Seconds() / durs[i].Seconds()
				fmt.Printf("%-10s %-10s %12v %14.0f %11.2fx\n", mode, k.name,
					durs[i].Round(time.Millisecond), float64(trials)/durs[i].Seconds(), spd)
				// Bytes carries the layout the kernel actually scanned:
				// the flat SoA footprint for flat rows, zero otherwise
				// (the indexed/legacy layouts are not what E12 sizes).
				var layoutBytes int64
				if i == 0 {
					layoutBytes = fx.SizeBytes()
				}
				record("E12", fmt.Sprintf("%s/%s/%dk-trials", k.name, mode, trials/1000),
					durs[i], layoutBytes, spd)
			}
			for t := 0; t < trials; t++ {
				if results[0].Portfolio.Agg[t] != results[1].Portfolio.Agg[t] ||
					results[0].Portfolio.Agg[t] != results[2].Portfolio.Agg[t] ||
					results[0].Portfolio.OccMax[t] != results[1].Portfolio.OccMax[t] ||
					results[0].Portfolio.OccMax[t] != results[2].Portfolio.OccMax[t] {
					return fmt.Errorf("E12: kernels diverged at trial %d (%s)", t, mode)
				}
			}
			fmt.Printf("equivalence (%s): all %d trials bit-identical across the three kernels\n", mode, trials)
		}
	}
	return nil
}

// E13 — the flat SoA year-state kernel for the stateful
// reinstatements path: contiguous available/reinstatement-balance
// columns over layers.FlatTerms, reset by bulk copy, driven from
// lossindex.Flat gather offsets — vs the indexed nested-slice state
// machine it replaced, sampling off and on, at two trial counts,
// under market-standard terms. The occurrence walk still serializes
// within a trial (that is the contractual semantics); the win is
// every access in the serial walk becoming a linear-offset load.
// Both kernels are verified bit-identical per cell, premium ledger
// included.
func e13ReinstatementsKernel(ctx context.Context) error {
	sizes := []int{100_000, 1_000_000}
	if *flagQuick {
		sizes = []int{10_000, 100_000}
	}
	fmt.Printf("## E13 — flat SoA year-state reinstatements kernel vs indexed (stateful path)\n")
	for _, trials := range sizes {
		s, err := scenario(ctx, trials, false)
		if err != nil {
			return err
		}
		in := aggInput(s)
		if _, err := in.EnsureIndex(); err != nil {
			return err
		}
		t0 := time.Now()
		fx, err := in.EnsureFlat()
		if err != nil {
			return err
		}
		tmpl, err := fx.Terms.NewFlatYearStates(aggregate.StandardReinstatements(s.Portfolio))
		if err != nil {
			return err
		}
		flatBuild := time.Since(t0)
		fmt.Printf("\n%d trials — flat layout: %d entries, %d year-state slots, %s (+%s states), built in %v\n",
			trials, fx.NumEntries(), tmpl.NumLayers(),
			yelt.HumanBytes(float64(fx.SizeBytes())), yelt.HumanBytes(float64(tmpl.SizeBytes())),
			flatBuild.Round(time.Microsecond))
		terms := aggregate.StandardReinstatements(s.Portfolio)
		fmt.Printf("%-10s %-10s %12s %14s %12s\n", "mode", "kernel", "time", "trials/s", "vs indexed")
		for _, sampling := range []bool{false, true} {
			mode := "expected"
			if sampling {
				mode = "sampling"
			}
			kernels := []struct {
				name   string
				kernel aggregate.Kernel
			}{
				{"flat", aggregate.KernelFlat},
				{"indexed", aggregate.KernelIndexed},
			}
			results := make([]*aggregate.ReinstatementResult, len(kernels))
			durs := make([]time.Duration, len(kernels))
			for i, k := range kernels {
				rin := &aggregate.ReinstatementInput{Input: in, Terms: terms}
				cfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: sampling, Workers: *flagWorkers, Kernel: k.kernel}
				t0 := time.Now()
				results[i], err = aggregate.RunReinstatements(ctx, rin, cfg)
				if err != nil {
					return err
				}
				durs[i] = time.Since(t0)
			}
			idxDur := durs[1]
			for i, k := range kernels {
				spd := idxDur.Seconds() / durs[i].Seconds()
				fmt.Printf("%-10s %-10s %12v %14.0f %11.2fx\n", mode, k.name,
					durs[i].Round(time.Millisecond), float64(trials)/durs[i].Seconds(), spd)
				// Bytes carries the layout the kernel scanned: flat SoA +
				// year-state columns for flat rows, zero otherwise.
				var layoutBytes int64
				if i == 0 {
					layoutBytes = fx.SizeBytes() + tmpl.SizeBytes()
				}
				record("E13", fmt.Sprintf("%s/%s/%dk-trials", k.name, mode, trials/1000),
					durs[i], layoutBytes, spd)
			}
			for t := 0; t < trials; t++ {
				if results[0].Portfolio.Agg[t] != results[1].Portfolio.Agg[t] ||
					results[0].Portfolio.OccMax[t] != results[1].Portfolio.OccMax[t] ||
					results[0].ReinstPremium[t] != results[1].ReinstPremium[t] {
					return fmt.Errorf("E13: kernels diverged at trial %d (%s)", t, mode)
				}
			}
			fmt.Printf("equivalence (%s): all %d trials bit-identical across kernels, premium ledger included\n", mode, trials)
		}
	}
	return nil
}

// E14 — the blocked SoA trial kernel (event-major over a block of
// trial years, pre-resolved spans, dense ExpRec scatter) against the
// trial-at-a-time flat and indexed kernels, plus the two-lifetime
// device arena: Chunked streaming with the loss vectors uploaded once
// into the study-resident arena while occurrences/offsets/outputs
// cycle per batch. Host-kernel timings are medians over interleaved
// repetitions — back-to-back single runs are incomparable on noisy
// machines, interleaved medians are stable. Every cell is verified
// bit-identical across kernels (and against the legacy lookup
// reference) before any number is printed.
func e14BlockedKernel(ctx context.Context) error {
	trials := 100_000
	reps := 5
	if *flagQuick {
		trials = 20_000
		reps = 3
	}
	fmt.Printf("## E14 — blocked SoA trial kernel + two-lifetime device arena (%d trials, median of %d interleaved reps)\n", trials, reps)
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	in := aggInput(s)
	fx, err := in.EnsureFlat()
	if err != nil {
		return err
	}

	type cell struct {
		name string
		cfg  aggregate.Config
	}
	runCells := func(cells []cell) ([]*aggregate.Result, []time.Duration, error) {
		durs := make([][]time.Duration, len(cells))
		results := make([]*aggregate.Result, len(cells))
		for r := 0; r < reps; r++ {
			for i, c := range cells {
				t0 := time.Now()
				res, err := (aggregate.Sequential{}).Run(ctx, in, c.cfg)
				if err != nil {
					return nil, nil, err
				}
				durs[i] = append(durs[i], time.Since(t0))
				results[i] = res
			}
		}
		med := make([]time.Duration, len(cells))
		for i := range cells {
			sort.Slice(durs[i], func(a, b int) bool { return durs[i][a] < durs[i][b] })
			med[i] = durs[i][len(durs[i])/2]
		}
		return results, med, nil
	}
	checkIdentical := func(tag string, results []*aggregate.Result) error {
		for t := 0; t < trials; t++ {
			for i := 1; i < len(results); i++ {
				if results[0].Portfolio.Agg[t] != results[i].Portfolio.Agg[t] ||
					results[0].Portfolio.OccMax[t] != results[i].Portfolio.OccMax[t] {
					return fmt.Errorf("E14: %s kernels diverged at trial %d", tag, t)
				}
			}
		}
		return nil
	}

	for _, sampling := range []bool{false, true} {
		mode := "expected"
		if sampling {
			mode = "sampling"
		}
		base := aggregate.Config{Seed: *flagSeed + 13, Sampling: sampling}
		cells := []cell{
			{"blocked", base}, // KernelBlocked is the zero value / default
			{"flat", base},
			{"indexed", base},
		}
		cells[1].cfg.Kernel = aggregate.KernelFlat
		cells[2].cfg.Kernel = aggregate.KernelIndexed
		results, med, err := runCells(cells)
		if err != nil {
			return err
		}
		legacy, err := (aggregate.LegacyLookup{}).Run(ctx, in, base)
		if err != nil {
			return err
		}
		if err := checkIdentical(mode, append(results, legacy)); err != nil {
			return err
		}
		fmt.Printf("\n%-10s %-10s %12s %14s %12s\n", "mode", "kernel", "time", "trials/s", "vs flat")
		flatDur := med[1]
		for i, c := range cells {
			spd := flatDur.Seconds() / med[i].Seconds()
			fmt.Printf("%-10s %-10s %12v %14.0f %11.2fx\n", mode, c.name,
				med[i].Round(time.Millisecond), float64(trials)/med[i].Seconds(), spd)
			var layoutBytes int64
			if i == 0 {
				layoutBytes = fx.SizeBytes()
			}
			record("E14", fmt.Sprintf("%s/%s/%dk-trials", c.name, mode, trials/1000),
				med[i], layoutBytes, spd)
		}
		fmt.Printf("equivalence (%s): all %d trials bit-identical across blocked/flat/indexed/legacy\n", mode, trials)
	}

	// Block-size sweep, expected mode: results are bit-independent of
	// the block size; throughput is not.
	blockCells := []cell{}
	for _, tb := range []int{1, 32, 64, 128} {
		c := cell{fmt.Sprintf("block=%d", tb), aggregate.Config{Seed: *flagSeed + 13, TrialBlock: tb}}
		blockCells = append(blockCells, c)
	}
	results, med, err := runCells(blockCells)
	if err != nil {
		return err
	}
	if err := checkIdentical("block-sweep", results); err != nil {
		return err
	}
	fmt.Printf("\n%-10s %12s %14s\n", "block", "time", "trials/s")
	for i, c := range blockCells {
		fmt.Printf("%-10s %12v %14.0f\n", c.name, med[i].Round(time.Millisecond), float64(trials)/med[i].Seconds())
		record("E14", fmt.Sprintf("sweep/%s/%dk-trials", c.name, trials/1000), med[i], 0, 0)
	}

	// Two-lifetime arena: stream the occurrence-only book through the
	// device engine and split the link traffic by buffer lifetime. The
	// resident column is paid once per run; the batch column is the
	// steady-state per-pass cost, which no longer includes the loss
	// vectors (pre-arena, every pass re-uploaded them).
	occ, err := scenario(ctx, trials, true)
	if err != nil {
		return err
	}
	occIn := aggInput(occ)
	gen, err := occ.YELTGenerator()
	if err != nil {
		return err
	}
	strIn := &aggregate.Input{Source: gen, ELTs: occ.ELTs, Portfolio: occ.Portfolio, Index: occIn.Index, Flat: occIn.Flat}
	ch := &aggregate.Chunked{}
	batchT := aggregate.DefaultBatchTrials
	t0 := time.Now()
	strRes, err := ch.Run(ctx, strIn, aggregate.Config{BatchTrials: batchT})
	if err != nil {
		return err
	}
	strDur := time.Since(t0)
	matRef := &aggregate.Chunked{}
	matRes, err := matRef.Run(ctx, occIn, aggregate.Config{})
	if err != nil {
		return err
	}
	for t := 0; t < trials; t++ {
		if strRes.Portfolio.Agg[t] != matRes.Portfolio.Agg[t] ||
			strRes.Portfolio.OccMax[t] != matRes.Portfolio.OccMax[t] {
			return fmt.Errorf("E14: arena'd streaming device run diverged at trial %d", t)
		}
	}
	st := ch.LastStats
	numBatches := (trials + batchT - 1) / batchT
	perPass := st.ResidentTransferFloats * uint64(numBatches) // what per-pass re-upload would have cost
	fmt.Printf("\ndevice arena (streaming, %d batches of %d trials):\n", numBatches, batchT)
	fmt.Printf("%-26s %16s %16s\n", "transfer lifetime", "floats", "per batch")
	fmt.Printf("%-26s %16d %16d\n", "study-resident (once)", st.ResidentTransferFloats, st.ResidentTransferFloats)
	fmt.Printf("%-26s %16d %16d\n", "per-batch (cycled)", st.TransferFloats, st.TransferFloats/uint64(numBatches))
	fmt.Printf("loss vectors saved from re-staging: %d floats (%.1fx less resident traffic than per-pass upload)\n",
		perPass-st.ResidentTransferFloats, float64(perPass)/float64(st.ResidentTransferFloats))
	fmt.Printf("streaming device run: %v, modeled device time %s, results bit-identical to single-pass\n",
		strDur.Round(time.Millisecond), fmtSec(st.ModeledSeconds(devDefault())))
	record("E14", fmt.Sprintf("arena/resident-floats/%dk-trials", trials/1000), strDur, int64(st.ResidentTransferFloats), 0)
	record("E14", fmt.Sprintf("arena/batch-floats/%dk-trials", trials/1000), strDur, int64(st.TransferFloats), 0)
	return nil
}

func fmtSec(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.1fh", s/3600)
	}
}

// e15QuoteService runs the real-time quote serving tier end to end: a
// warmed serve.Server over a shared risk.Study, driven by closed-loop
// load in three phases — calm (half the pool), active (pool-sized) and
// burst (several times pool+queue, so admission control must shed
// 429s) — then drained gracefully. The paper's claim under test is
// that per-contract aggregate simulation is fast enough for real-time
// pricing (§II); the serving tier adds the operational half: bounded
// queueing keeps served latency flat under overload instead of letting
// it collapse.
func e15QuoteService(ctx context.Context) error {
	events, contracts, locs := 2_000, 8, 150
	studyTrials, quoteTrials := 5_000, 2_000
	perClient := 6
	if *flagQuick {
		events, contracts, locs = 600, 4, 60
		studyTrials, quoteTrials = 1_200, 500
		perClient = 3
	}
	pool := runtime.GOMAXPROCS(0)
	if *flagWorkers > 0 {
		pool = *flagWorkers
	}
	queue := pool // tight: burst must shed, not buffer

	fmt.Printf("## E15 — real-time quote service (%d contracts, %d-trial quotes, pool %d, queue %d)\n",
		contracts, quoteTrials, pool, queue)

	study := risk.NewStudy(risk.Config{
		Seed:                 *flagSeed,
		Events:               events,
		Contracts:            contracts,
		LocationsPerContract: locs,
		Trials:               studyTrials,
		MeanEventsPerYear:    10,
		Rho:                  0.2,
		// Single-threaded per quote: the pool supplies the parallelism.
		Workers: 1,
	})
	srv := serve.New(study, serve.Config{
		Workers:       pool,
		QueueDepth:    queue,
		Timeout:       time.Minute,
		DefaultTrials: quoteTrials,
	})
	t0 := time.Now()
	if err := srv.Warm(ctx); err != nil {
		return err
	}
	warmDur := time.Since(t0)
	fmt.Printf("%-10s %12v  (stage 1 + %d per-contract quote layouts)\n", "warm-up", warmDur.Round(time.Millisecond), contracts)
	record("E15", "warm", warmDur, 0, 0)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clamp := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	phases := []loadgen.Phase{
		{Name: "calm", Clients: clamp(pool / 2), Trials: quoteTrials, Contracts: contracts},
		{Name: "active", Clients: pool, Trials: quoteTrials, Contracts: contracts},
		{Name: "burst", Clients: 4 * (pool + queue), Trials: quoteTrials, Contracts: contracts},
	}
	for i := range phases {
		phases[i].Requests = phases[i].Clients * perClient
	}
	results, err := loadgen.Run(ctx, ts.Client(), ts.URL, phases)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %6s %6s %6s %6s %6s %10s %10s %8s\n",
		"phase", "sent", "ok", "429", "503", "err", "p50", "p99", "ok/s")
	for _, r := range results {
		fmt.Printf("%-10s %6d %6d %6d %6d %6d %10v %10v %8.1f\n",
			r.Phase, r.Sent, r.OK, r.Rejected, r.Unavail, r.Errors,
			r.P50.Round(100*time.Microsecond), r.P99.Round(100*time.Microsecond), r.QPS)
		record("E15", r.Phase+"/p50", r.P50, 0, 0)
		record("E15", r.Phase+"/p99", r.P99, 0, r.QPS)
	}
	if burst := results[len(results)-1]; burst.Rejected == 0 {
		fmt.Printf("note: burst shed no load — pool drained %d clients without filling the queue\n", 4*(pool+queue))
	}

	// Graceful retirement: stop admitting, stop the HTTP layer, drain
	// the pool. The drain time bounds what a SIGTERM costs in flight.
	t0 = time.Now()
	srv.BeginDrain()
	ts.Close()
	if err := srv.Drain(ctx); err != nil {
		return err
	}
	drainDur := time.Since(t0)
	fmt.Printf("%-10s %12v\n", "drain", drainDur.Round(time.Millisecond))
	record("E15", "drain", drainDur, 0, 0)
	return nil
}

// e16LocalityPlacement measures the locality-aware distributed stage 2.
// One spill commits the trial shards across a multi-node diskstore;
// then the MapReduce engine sweeps mapper placement (location-blind vs
// shard-affine) against process topology (fused — the spilling
// process's own source handle — vs two-process — a fresh
// diskstore.Open + manifest re-attach, exactly what `riskpipeline
// -mode aggregate` sees). Every cell must be bit-identical to the
// sequential engine over the materialized table; the columns that may
// differ are time and where the bytes came from: shard-affine
// placement schedules each mapper on the storage node holding its
// split, so the scan is node-local, while blind placement pulls
// ~1/nodes of the bytes locally by accident. A second table runs the
// real pipeline under parsed provisioning policies and reports each
// stage's allocated-vs-busy processor time — the §II elasticity story
// measured, not simulated.
func e16LocalityPlacement(ctx context.Context) error {
	trials := 1_000_000
	if *flagQuick {
		trials = 100_000
	}
	nodes := yelt.DefaultSpillNodes
	parts := aggregate.DefaultSpillParts(trials)
	if parts < 8*nodes {
		// Keep every node's lane deep enough that placement, not shard
		// scarcity, decides locality.
		parts = 8 * nodes
	}
	// A locality measurement needs mappers homed on every storage node:
	// a fleet smaller than the node count leaves unmanned lanes whose
	// every byte is a steal, measuring host size rather than placement.
	// Workers are goroutines, so oversubscribing small hosts is fine.
	workers := *flagWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2*nodes {
		workers = 2 * nodes
	}
	fmt.Printf("## E16 — locality-aware stage 2: placement × topology (%d trials, %d shards on %d storage nodes, %d mappers)\n",
		trials, parts, nodes, workers)
	s, err := scenario(ctx, 1000, false)
	if err != nil {
		return err
	}
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		return err
	}
	acfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: true, Workers: workers}
	ycfg := yelt.Config{NumTrials: trials, Workers: *flagWorkers}

	// Spill once; every cell scans the same committed shards.
	dir, err := os.MkdirTemp("", "e16-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gen, err := yelt.NewGenerator(s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	t0 := time.Now()
	fused, err := yelt.SpillToDir(ctx, gen, dir, nodes, parts, 1, *flagWorkers)
	if err != nil {
		return err
	}
	spillDur := time.Since(t0)
	spillBytes, err := fused.SizeBytes()
	if err != nil {
		return err
	}
	fmt.Printf("spill: %d shards on %d nodes, %s written in %v\n",
		fused.Shards(), fused.Nodes(), yelt.HumanBytes(float64(spillBytes)), spillDur.Round(time.Millisecond))

	// Reference for per-cell bit-equivalence: the sequential engine
	// over the materialized table.
	y, err := yelt.Generate(ctx, s.Catalog, ycfg, *flagSeed+7)
	if err != nil {
		return err
	}
	want, err := aggregate.Sequential{}.Run(ctx,
		&aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
	if err != nil {
		return err
	}

	// The two-process handoff: a fresh store handle re-attached through
	// the spill manifest, as a separate aggregate process would open it.
	store, err := diskstore.Open(dir)
	if err != nil {
		return err
	}
	attached, err := yelt.OpenDiskSource(store, "yelt")
	if err != nil {
		return err
	}

	cells := []struct {
		topo  string
		src   *yelt.DiskSource
		place aggregate.Placement
	}{
		{"fused", fused, aggregate.PlaceBlind},
		{"fused", fused, aggregate.PlaceAffine},
		{"two-process", attached, aggregate.PlaceBlind},
		{"two-process", attached, aggregate.PlaceAffine},
	}
	fmt.Printf("%-12s %-10s %10s %12s %12s %12s %8s\n",
		"topology", "placement", "time", "trials/s", "local", "remote", "local%")
	affineWorst := 1.0
	for _, c := range cells {
		eng := aggregate.MapReduce{Placement: c.place}
		t0 = time.Now()
		res, err := eng.Run(ctx,
			&aggregate.Input{Source: c.src, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", c.topo, c.place, err)
		}
		dur := time.Since(t0)
		for t := 0; t < trials; t++ {
			if res.Portfolio.Agg[t] != want.Portfolio.Agg[t] || res.Portfolio.OccMax[t] != want.Portfolio.OccMax[t] {
				return fmt.Errorf("E16: %s/%s diverged from sequential at trial %d", c.topo, c.place, t)
			}
		}
		total := res.LocalBytes + res.RemoteBytes
		frac := 0.0
		if total > 0 {
			frac = float64(res.LocalBytes) / float64(total)
		}
		if c.place == aggregate.PlaceAffine && frac < affineWorst {
			affineWorst = frac
		}
		name := fmt.Sprintf("%s/%s", c.topo, c.place)
		fmt.Printf("%-12s %-10s %10v %12.0f %12s %12s %7.1f%%\n",
			c.topo, c.place, dur.Round(time.Millisecond), float64(trials)/dur.Seconds(),
			yelt.HumanBytes(float64(res.LocalBytes)), yelt.HumanBytes(float64(res.RemoteBytes)), 100*frac)
		record("E16", name, dur, total, frac)
		record("E16", name+"/local-bytes", dur, res.LocalBytes, 0)
		record("E16", name+"/remote-bytes", dur, res.RemoteBytes, 0)
	}
	fmt.Printf("equivalence: all 4 cells bit-identical to the sequential engine (%d trials)\n", trials)
	if affineWorst < 0.9 {
		return fmt.Errorf("E16: shard-affine placement scanned only %.1f%% node-local, want >= 90%%", 100*affineWorst)
	}
	fmt.Printf("locality: shard-affine placement >= %.1f%% node-local in every topology\n", 100*affineWorst)

	// Elastic provisioning in the real pipeline: each stage asks for
	// its exploitable parallelism, the policy decides the allocation,
	// and the stage report carries the resulting bill.
	pipeTrials := 100_000
	if *flagQuick {
		pipeTrials = 20_000
	}
	fmt.Printf("\nprovisioned pipeline (%d trials, spilled stage 2, shard-affine mapreduce):\n", pipeTrials)
	for _, ps := range []string{"static:8", "elastic:8"} {
		policy, err := cluster.ParsePolicy(ps)
		if err != nil {
			return err
		}
		cfg := core.Config{
			Seed:                 *flagSeed,
			NumEvents:            2_000,
			NumContracts:         8,
			LocationsPerContract: 100,
			MeanEventsPerYear:    10,
			NumTrials:            pipeTrials,
			Engine:               aggregate.MapReduce{Placement: aggregate.PlaceAffine},
			Sampling:             true,
			Spill:                true,
			SpillNodes:           nodes,
			Rho:                  0.25,
			Workers:              *flagWorkers,
			TwoLayers:            true,
			Provision:            policy,
		}
		rep, err := core.New(cfg).Run(ctx)
		if err != nil {
			return fmt.Errorf("provision %s: %w", ps, err)
		}
		var alloc, busy float64
		fmt.Printf("%-11s %-16s %10s %8s %12s %12s %6s\n",
			"policy", "stage", "time", "workers", "alloc-psec", "busy-psec", "util")
		for _, st := range rep.Stages {
			if st.Workers == 0 {
				continue // sub-stage lines carry no worker accounting
			}
			util := 0.0
			if st.AllocatedProcSecs > 0 {
				util = st.BusyProcSecs / st.AllocatedProcSecs
			}
			alloc += st.AllocatedProcSecs
			busy += st.BusyProcSecs
			fmt.Printf("%-11s %-16s %10v %8d %12.3f %12.3f %6.2f\n",
				ps, st.Name, st.Duration.Round(time.Millisecond), st.Workers,
				st.AllocatedProcSecs, st.BusyProcSecs, util)
			record("E16", fmt.Sprintf("provision/%s/%s", ps, st.Name), st.Duration, 0, util)
		}
		fmt.Printf("%-11s %-16s %10s %8s %12.3f %12.3f %6.2f\n",
			ps, "total", "", "", alloc, busy, busy/alloc)
	}
	return nil
}

// e17FaultTolerance measures the fault-tolerant distributed stage 2.
// One scenario spills its trial stream twice — unreplicated and r=2
// chained-declustering replicas — and the MapReduce engine re-runs the
// same aggregation under escalating deterministic chaos: injected
// shard-read failure rates, a dead-on-arrival storage node, and an
// injected straggler with speculative re-execution. Every surviving
// cell must be bit-identical to the fault-free sequential run — faults
// may only move time and the recovery counters, never values. The
// table reports the absorbed chaos (map retries, replica failovers,
// speculative backups, lost workers) and the completion-time overhead
// against the clean cell at the same replication factor.
func e17FaultTolerance(ctx context.Context) error {
	trials := 400_000
	if *flagQuick {
		trials = 50_000
	}
	nodes := yelt.DefaultSpillNodes
	parts := aggregate.DefaultSpillParts(trials)
	if parts < 4*nodes {
		parts = 4 * nodes
	}
	// Node kills need survivors with spare lanes, and speculation needs
	// idle workers to run backups; oversubscription is cheap.
	workers := *flagWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 2*nodes {
		workers = 2 * nodes
	}
	fmt.Printf("## E17 — fault-tolerant stage 2: chaos × replication (%d trials, %d shards on %d storage nodes, %d mappers)\n",
		trials, parts, nodes, workers)
	s, err := scenario(ctx, trials, false)
	if err != nil {
		return err
	}
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		return err
	}
	acfg := aggregate.Config{Seed: *flagSeed + 13, Sampling: true, Workers: workers}
	want, err := aggregate.Sequential{}.Run(ctx,
		&aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
	if err != nil {
		return err
	}

	// Spill once per replication factor; cells at the same r scan the
	// same committed shards.
	ycfg := yelt.Config{NumTrials: trials, Workers: *flagWorkers}
	sources := map[int]*yelt.DiskSource{}
	for _, r := range []int{1, 2} {
		dir, err := os.MkdirTemp("", fmt.Sprintf("e17-r%d-*", r))
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		gen, err := yelt.NewGenerator(s.Catalog, ycfg, *flagSeed+7)
		if err != nil {
			return err
		}
		ds, err := yelt.SpillToDir(ctx, gen, dir, nodes, parts, r, *flagWorkers)
		if err != nil {
			return err
		}
		bytes, err := ds.SizeBytes()
		if err != nil {
			return err
		}
		fmt.Printf("spill r=%d: %d shards on %d nodes, %s committed\n",
			r, ds.Shards(), ds.Nodes(), yelt.HumanBytes(float64(bytes)))
		sources[r] = ds
	}

	cells := []struct {
		name      string
		replicas  int
		spec      string
		speculate bool
	}{
		{"clean", 1, "", false},
		{"clean", 2, "", false},
		{"first-read-fails", 1, "shard=*@1", false},
		{"rate=0.05", 2, "rate=0.05", false},
		{"rate=0.10", 2, "rate=0.10", false},
		{"rate+kill", 2, "rate=0.10,kill=1@1", false},
		{"straggler+spec", 2, "delay=0@40ms", true},
	}
	fmt.Printf("%-18s %2s %10s %12s %8s %9s %9s %10s %6s %9s\n",
		"chaos", "r", "time", "trials/s", "retries", "failover", "spec/won", "lost", "ovhd", "verified")
	clean := map[int]time.Duration{}
	for _, c := range cells {
		plan, err := faultinject.Parse(c.spec, *flagSeed)
		if err != nil {
			return err
		}
		eng := aggregate.MapReduce{MaxAttempts: 5, Speculate: c.speculate, Faults: plan}
		t0 := time.Now()
		res, err := eng.Run(ctx,
			&aggregate.Input{Source: sources[c.replicas], ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}, acfg)
		if err != nil {
			return fmt.Errorf("%s/r%d: %w", c.name, c.replicas, err)
		}
		dur := time.Since(t0)
		for t := 0; t < trials; t++ {
			if res.Portfolio.Agg[t] != want.Portfolio.Agg[t] || res.Portfolio.OccMax[t] != want.Portfolio.OccMax[t] {
				return fmt.Errorf("E17: %s/r%d diverged from fault-free sequential at trial %d", c.name, c.replicas, t)
			}
		}
		if c.spec == "" {
			clean[c.replicas] = dur
		}
		ovhd := 0.0
		if base := clean[c.replicas]; base > 0 {
			ovhd = dur.Seconds() / base.Seconds()
		}
		fmt.Printf("%-18s %2d %10v %12.0f %8d %9d %5d/%-3d %10d %5.2fx %9s\n",
			c.name, c.replicas, dur.Round(time.Millisecond), float64(trials)/dur.Seconds(),
			res.MapRetries, res.ShardFailovers, res.SpecLaunched, res.SpecWins,
			res.WorkersLost, ovhd, "bit-eq")
		name := fmt.Sprintf("%s/r%d", c.name, c.replicas)
		record("E17", name, dur, 0, ovhd)
		record("E17", name+"/retries", dur, res.MapRetries, 0)
		record("E17", name+"/failovers", dur, res.ShardFailovers, 0)
		record("E17", name+"/workers-lost", dur, res.WorkersLost, 0)
	}
	fmt.Printf("equivalence: all %d cells bit-identical to the fault-free sequential engine (%d trials)\n",
		len(cells), trials)
	return nil
}

// e18WarehouseCube measures the incremental warehouse cube end to
// end. Build cost: batch Build over the finished per-contract tables
// vs an incremental Builder fed the same trials in streamed batches
// (what the pipeline's warehouse stage does), gated on bit-identical
// cubes. Delta re-pricing: Replace of one contract's YLT vs a full
// rebuild, again bit-identical. Serving: /v1/cube query latency
// (dictionary lookup of a pre-computed summary) vs check=direct
// (re-combining the cell from the registry) vs a direct per-contract
// quote simulation — the paper's pre-computation-vs-simulation
// trade-off measured on the wire.
func e18WarehouseCube(ctx context.Context) error {
	events, contracts, locs, trials := 2_000, 12, 150, 20_000
	queries, quoteTrials := 200, 2_000
	if *flagQuick {
		events, contracts, locs, trials = 600, 6, 60, 2_000
		queries, quoteTrials = 40, 500
	}
	workers := runtime.GOMAXPROCS(0)
	if *flagWorkers > 0 {
		workers = *flagWorkers
	}
	dims := warehouse.DefaultDims()

	fmt.Printf("## E18 — incremental warehouse cube (%d contracts, %d trials, dims %s)\n",
		contracts, trials, strings.Join(dims, ","))

	// One pipeline run supplies both the per-contract registry and the
	// pipeline-built cube (streamed through the stage-2 batch sink).
	p := core.New(core.Config{
		Seed: *flagSeed, NumEvents: events, NumContracts: contracts,
		LocationsPerContract: locs, NumTrials: trials,
		Engine: aggregate.Parallel{}, Sampling: true, Rho: 0.2,
		Workers: workers, TwoLayers: true, CubeDims: dims,
	})
	if _, err := p.Run(ctx); err != nil {
		return err
	}
	pc := p.AggResult.PerContract
	attrs := warehouse.DefaultAttrs(contracts)
	in := &warehouse.Input{Tables: pc, Attrs: attrs}

	t0 := time.Now()
	batchCube, err := warehouse.Build(ctx, in, dims, workers)
	if err != nil {
		return err
	}
	batchDur := time.Since(t0)

	const batchSize = 1_000
	t0 = time.Now()
	bld, err := warehouse.NewBuilder(dims, attrs, trials, workers)
	if err != nil {
		return err
	}
	for lo := 0; lo < trials; lo += batchSize {
		k := batchSize
		if lo+k > trials {
			k = trials - lo
		}
		agg := make([][]float64, contracts)
		occ := make([][]float64, contracts)
		for ci, t := range pc {
			agg[ci] = t.Agg[lo : lo+k]
			occ[ci] = t.OccMax[lo : lo+k]
		}
		if err := bld.IngestBatch(lo, agg, occ); err != nil {
			return err
		}
	}
	incCube, err := bld.Finalize(ctx, pc)
	if err != nil {
		return err
	}
	incDur := time.Since(t0)
	if err := cubesEqual(batchCube, incCube); err != nil {
		return fmt.Errorf("E18: incremental vs batch: %w", err)
	}
	if err := cubesEqual(batchCube, p.Cube); err != nil {
		return fmt.Errorf("E18: pipeline-built vs batch: %w", err)
	}

	fmt.Printf("%-22s %12s %14s %8s\n", "build", "duration", "resident", "cells")
	fmt.Printf("%-22s %12v %14s %8d\n", "batch", batchDur.Round(time.Millisecond),
		yelt.HumanBytes(float64(batchCube.SizeBytes())), batchCube.Cells())
	fmt.Printf("%-22s %12v %14s %8d  (bit-identical, %d-trial batches)\n", "incremental",
		incDur.Round(time.Millisecond), yelt.HumanBytes(float64(incCube.SizeBytes())),
		incCube.Cells(), batchSize)
	record("E18", "batch-build", batchDur, batchCube.SizeBytes(), 0)
	record("E18", "incremental-build", incDur, incCube.SizeBytes(),
		batchDur.Seconds()/incDur.Seconds())

	// Delta re-pricing: one contract's YLT changes; Replace refolds
	// only the touched cells, a rebuild refolds everything.
	target := contracts / 2
	old := incCube.Contract(target)
	next := &ylt.Table{Name: old.Name,
		Agg: make([]float64, trials), OccMax: make([]float64, trials)}
	for i := range next.Agg {
		next.Agg[i] = old.Agg[i] * 1.25
		next.OccMax[i] = old.OccMax[i] * 1.25
	}
	t0 = time.Now()
	touched, err := incCube.Replace(ctx, target, old, next)
	if err != nil {
		return err
	}
	repDur := time.Since(t0)
	swapped := append([]*ylt.Table(nil), pc...)
	swapped[target] = next
	t0 = time.Now()
	rebuilt, err := warehouse.Build(ctx, &warehouse.Input{Tables: swapped, Attrs: attrs}, dims, workers)
	if err != nil {
		return err
	}
	rebuildDur := time.Since(t0)
	if err := cubesEqual(rebuilt, incCube); err != nil {
		return fmt.Errorf("E18: post-Replace vs rebuild: %w", err)
	}
	fmt.Printf("%-22s %12v  (%d/%d cells touched, bit-identical to %v rebuild, %.1fx)\n",
		"replace contract", repDur.Round(time.Microsecond), touched, incCube.Cells(),
		rebuildDur.Round(time.Millisecond), rebuildDur.Seconds()/repDur.Seconds())
	record("E18", "replace", repDur, int64(touched), rebuildDur.Seconds()/repDur.Seconds())
	record("E18", "rebuild", rebuildDur, int64(rebuilt.Cells()), 0)

	// Served queries: pre-computed cell vs registry recompute vs a
	// direct per-contract quote simulation, over HTTP.
	study := risk.NewStudy(risk.Config{
		Seed: *flagSeed, Events: events, Contracts: contracts,
		LocationsPerContract: locs, Trials: trials,
		MeanEventsPerYear: 10, Rho: 0.2, Sampling: true,
		Workers: 1, CubeDims: dims,
	})
	srv := serve.New(study, serve.Config{Workers: workers, DefaultTrials: quoteTrials})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(query string) ([]byte, time.Duration, error) {
		t0 := time.Now()
		resp, err := ts.Client().Get(ts.URL + "/v1/cube" + query)
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != 200 {
			err = fmt.Errorf("E18: /v1/cube%s: status %d (%s)", query, resp.StatusCode, body)
		}
		return body, time.Since(t0), err
	}
	// First query triggers the full study run and cube build.
	t0 = time.Now()
	servedBody, _, err := get("?region=coastal")
	if err != nil {
		return err
	}
	firstDur := time.Since(t0)
	directBody, _, err := get("?region=coastal&check=direct")
	if err != nil {
		return err
	}
	if string(servedBody) != string(directBody) {
		return fmt.Errorf("E18: served cell differs from check=direct recompute")
	}
	record("E18", "first-query-inc-run", firstDur, 0, 0)

	quantiles := func(lat []time.Duration) (p50, p99 time.Duration) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[int(0.99*float64(len(lat)-1))]
	}
	var cubeLat, checkLat, simLat []time.Duration
	for i := 0; i < queries; i++ {
		if _, d, err := get("?region=coastal"); err != nil {
			return err
		} else {
			cubeLat = append(cubeLat, d)
		}
		if _, d, err := get("?region=coastal&check=direct"); err != nil {
			return err
		} else {
			checkLat = append(checkLat, d)
		}
	}
	simQueries := queries / 4
	if simQueries < 4 {
		simQueries = 4
	}
	for i := 0; i < simQueries; i++ {
		t0 := time.Now()
		body := fmt.Sprintf(`{"contract": %d, "trials": %d}`, i%contracts, quoteTrials)
		resp, err := ts.Client().Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("E18: /v1/quote: status %d", resp.StatusCode)
		}
		simLat = append(simLat, time.Since(t0))
	}

	fmt.Printf("%-22s %12s %12s %8s\n", "query path", "p50", "p99", "n")
	for _, row := range []struct {
		name string
		lat  []time.Duration
	}{
		{"cube (pre-computed)", cubeLat},
		{"cube check=direct", checkLat},
		{"quote simulation", simLat},
	} {
		p50, p99 := quantiles(row.lat)
		fmt.Printf("%-22s %12v %12v %8d\n", row.name,
			p50.Round(10*time.Microsecond), p99.Round(10*time.Microsecond), len(row.lat))
		slug := strings.NewReplacer(" ", "-", "(", "", ")", "", "=", "-").Replace(row.name)
		record("E18", slug+"/p50", p50, 0, 0)
		record("E18", slug+"/p99", p99, 0, 0)
	}
	p50c, _ := quantiles(cubeLat)
	p50s, _ := quantiles(simLat)
	fmt.Printf("pre-computed cell answers %.0fx faster than a %d-trial quote simulation\n",
		p50s.Seconds()/p50c.Seconds(), quoteTrials)

	srv.BeginDrain()
	ts.Close()
	return srv.Drain(ctx)
}

// cubesEqual reports whether two cubes hold exactly the same cells
// with bitwise-identical per-trial columns.
func cubesEqual(a, b *warehouse.Cube) error {
	ka, kb := a.Keys(), b.Keys()
	if len(ka) != len(kb) {
		return fmt.Errorf("%d cells vs %d", len(ka), len(kb))
	}
	for i, key := range ka {
		if key != kb[i] {
			return fmt.Errorf("cell key %q vs %q", key, kb[i])
		}
		filter := map[string]string{}
		for _, part := range strings.Split(key, ",") {
			k, v, _ := strings.Cut(part, "=")
			filter[k] = v
		}
		ca, err := a.Query(filter)
		if err != nil {
			return err
		}
		cb, err := b.Query(filter)
		if err != nil {
			return err
		}
		for t := range ca.Table.Agg {
			if math.Float64bits(ca.Table.Agg[t]) != math.Float64bits(cb.Table.Agg[t]) ||
				math.Float64bits(ca.Table.OccMax[t]) != math.Float64bits(cb.Table.OccMax[t]) {
				return fmt.Errorf("cell %s trial %d differs", key, t)
			}
		}
	}
	return nil
}
