// Real-time pricing: the paper's flagship stage-2 use case. A broker
// asks for a quote on one contract; the engine answers with a
// million-trial aggregate simulation in seconds ("A 1 million trial
// aggregate simulation on a typical contract only takes 25 seconds
// and can therefore support real-time pricing", §II — on 2012
// hardware; the parallel host engine here is far faster).
//
//	go run ./examples/realtime_pricing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/risk"
)

func main() {
	cfg := risk.DefaultConfig()
	cfg.Events = 10_000
	cfg.Contracts = 4
	ctx := context.Background()

	study := risk.NewStudy(cfg)
	// Stage 1 runs once when the book is loaded...
	if err := study.RunModelling(ctx); err != nil {
		log.Fatalf("realtime_pricing: modelling: %v", err)
	}

	// ...then each incoming submission is priced interactively.
	for contract := 0; contract < 3; contract++ {
		quote, err := study.PriceContract(ctx, contract, 1_000_000)
		if err != nil {
			log.Fatalf("realtime_pricing: quote %d: %v", contract, err)
		}
		fmt.Printf("contract %d: %d trials in %v (%.0f trials/s)\n",
			quote.ContractID, quote.Trials, quote.Elapsed.Round(1e6),
			float64(quote.Trials)/quote.Elapsed.Seconds())
		fmt.Printf("  expected loss %12.0f\n", quote.AAL)
		fmt.Printf("  volatility    %12.0f\n", quote.StdDev)
		fmt.Printf("  99%% TVaR      %12.0f\n", quote.TVaR99)
		fmt.Printf("  250-yr PML    %12.0f\n", quote.PML250)
		fmt.Printf("  premium       %12.0f  (AAL + 0.35σ)\n\n", quote.Premium)
	}
}
