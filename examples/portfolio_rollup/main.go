// Portfolio rollup: per-contract aggregate analysis followed by
// warehouse-style pre-computed rollups — the stage-3 "parallel data
// warehousing" remedy for analyst queries over large YLT sets. The
// cube materializes every region × line-of-business group once; each
// analyst query is then a dictionary lookup.
//
//	go run ./examples/portfolio_rollup
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/aggregate"
	"repro/internal/synth"
	"repro/internal/warehouse"
	"repro/internal/ylt"
)

func main() {
	ctx := context.Background()
	s, err := synth.Build(ctx, synth.Params{
		Seed: 7, NumEvents: 5_000, NumContracts: 12,
		LocationsPerContract: 200, NumTrials: 30_000,
		MeanEventsPerYear: 10, TwoLayers: true,
	})
	if err != nil {
		log.Fatalf("portfolio_rollup: %v", err)
	}

	// Stage 2 with per-contract YLTs.
	res, err := (aggregate.Parallel{}).Run(ctx,
		&aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio},
		aggregate.Config{Seed: 11, Sampling: true, PerContract: true})
	if err != nil {
		log.Fatalf("portfolio_rollup: aggregate: %v", err)
	}

	// Tag each contract with reporting dimensions (in production these
	// come from the underwriting system).
	regions := []string{"coastal", "interior", "secondary"}
	lobs := []string{"property", "engineering"}
	in := &warehouse.Input{}
	for i, tbl := range res.PerContract {
		in.Tables = append(in.Tables, tbl)
		in.Attrs = append(in.Attrs, map[string]string{
			"region": regions[i%len(regions)],
			"lob":    lobs[i%len(lobs)],
		})
	}

	start := time.Now()
	cube, err := warehouse.Build(ctx, in, []string{"region", "lob"}, 0)
	if err != nil {
		log.Fatalf("portfolio_rollup: cube: %v", err)
	}
	fmt.Printf("materialized %d rollup cells in %v\n\n", cube.Cells(), time.Since(start).Round(time.Millisecond))

	queries := []map[string]string{
		{"region": "coastal"},
		{"region": "interior"},
		{"lob": "property"},
		{"region": "coastal", "lob": "property"},
	}
	fmt.Printf("%-36s %10s %14s %14s\n", "group", "contracts", "AAL", "99% TVaR")
	for _, q := range queries {
		cell, err := cube.Query(q)
		if err != nil {
			log.Fatalf("portfolio_rollup: query %v: %v", q, err)
		}
		fmt.Printf("%-36s %10d %14.0f %14.0f\n",
			cell.Key, cell.Members, cell.Summary.AAL, cell.Summary.TVaR99)
	}

	// Whole-book view by direct combination, for comparison.
	whole, err := ylt.Combine("book", res.PerContract...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole book: AAL %.0f over %d trials\n", whole.Mean(), whole.NumTrials())
}
