// Portfolio rollup: per-contract aggregate analysis followed by
// warehouse-style pre-computed rollups — the stage-3 "parallel data
// warehousing" remedy for analyst queries over large YLT sets. The
// cube materializes every region × line-of-business group once; each
// analyst query is then a dictionary lookup.
//
// The second half shows the incremental half of the story: the same
// cube built by streaming per-contract trial batches through a
// warehouse.Builder (bit-identical to the batch build), then a
// delta re-price of one contract via Cube.Replace, which refolds
// only the cells that contract touches.
//
//	go run ./examples/portfolio_rollup
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/aggregate"
	"repro/internal/synth"
	"repro/internal/warehouse"
	"repro/internal/ylt"
)

func main() {
	ctx := context.Background()
	s, err := synth.Build(ctx, synth.Params{
		Seed: 7, NumEvents: 5_000, NumContracts: 12,
		LocationsPerContract: 200, NumTrials: 30_000,
		MeanEventsPerYear: 10, TwoLayers: true,
	})
	if err != nil {
		log.Fatalf("portfolio_rollup: %v", err)
	}

	// Stage 2 with per-contract YLTs.
	res, err := (aggregate.Parallel{}).Run(ctx,
		&aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio},
		aggregate.Config{Seed: 11, Sampling: true, PerContract: true})
	if err != nil {
		log.Fatalf("portfolio_rollup: aggregate: %v", err)
	}

	// Tag each contract with reporting dimensions (in production these
	// come from the underwriting system).
	regions := []string{"coastal", "interior", "secondary"}
	lobs := []string{"property", "engineering"}
	in := &warehouse.Input{}
	for i, tbl := range res.PerContract {
		in.Tables = append(in.Tables, tbl)
		in.Attrs = append(in.Attrs, map[string]string{
			"region": regions[i%len(regions)],
			"lob":    lobs[i%len(lobs)],
		})
	}

	start := time.Now()
	cube, err := warehouse.Build(ctx, in, []string{"region", "lob"}, 0)
	if err != nil {
		log.Fatalf("portfolio_rollup: cube: %v", err)
	}
	fmt.Printf("materialized %d rollup cells in %v\n\n", cube.Cells(), time.Since(start).Round(time.Millisecond))

	queries := []map[string]string{
		{"region": "coastal"},
		{"region": "interior"},
		{"lob": "property"},
		{"region": "coastal", "lob": "property"},
	}
	fmt.Printf("%-36s %10s %14s %14s\n", "group", "contracts", "AAL", "99% TVaR")
	for _, q := range queries {
		cell, err := cube.Query(q)
		if err != nil {
			log.Fatalf("portfolio_rollup: query %v: %v", q, err)
		}
		fmt.Printf("%-36s %10d %14.0f %14.0f\n",
			cell.Key, cell.Members, cell.Summary.AAL, cell.Summary.TVaR99)
	}

	// Whole-book view by direct combination, for comparison.
	whole, err := ylt.Combine("book", res.PerContract...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole book: AAL %.0f over %d trials\n", whole.Mean(), whole.NumTrials())

	// The same cube, built incrementally: trial batches fold into the
	// running cells as they "arrive" (the pipeline's warehouse stage
	// does exactly this while stage 2 streams).
	numTrials := whole.NumTrials()
	start = time.Now()
	bld, err := warehouse.NewBuilder([]string{"region", "lob"}, in.Attrs, numTrials, 0)
	if err != nil {
		log.Fatalf("portfolio_rollup: builder: %v", err)
	}
	const batch = 5_000
	for lo := 0; lo < numTrials; lo += batch {
		k := batch
		if lo+k > numTrials {
			k = numTrials - lo
		}
		agg := make([][]float64, len(in.Tables))
		occ := make([][]float64, len(in.Tables))
		for ci, t := range in.Tables {
			agg[ci] = t.Agg[lo : lo+k]
			occ[ci] = t.OccMax[lo : lo+k]
		}
		if err := bld.IngestBatch(lo, agg, occ); err != nil {
			log.Fatalf("portfolio_rollup: ingest: %v", err)
		}
	}
	inc, err := bld.Finalize(ctx, in.Tables)
	if err != nil {
		log.Fatalf("portfolio_rollup: finalize: %v", err)
	}
	cell, _ := cube.Query(map[string]string{"region": "coastal"})
	incCell, _ := inc.Query(map[string]string{"region": "coastal"})
	fmt.Printf("\nincremental build: %d cells in %v (%d-trial batches); coastal AAL %.0f == batch %.0f\n",
		inc.Cells(), time.Since(start).Round(time.Millisecond), batch,
		incCell.Summary.AAL, cell.Summary.AAL)

	// Delta re-price: contract 3's terms change, its YLT scales up.
	// Replace refolds only the cells contract 3 belongs to.
	old := inc.Contract(3)
	next := &ylt.Table{Name: old.Name,
		Agg: make([]float64, numTrials), OccMax: make([]float64, numTrials)}
	for i := range next.Agg {
		next.Agg[i] = old.Agg[i] * 1.3
		next.OccMax[i] = old.OccMax[i] * 1.3
	}
	start = time.Now()
	touched, err := inc.Replace(ctx, 3, old, next)
	if err != nil {
		log.Fatalf("portfolio_rollup: replace: %v", err)
	}
	after, _ := inc.Query(map[string]string{"region": "coastal"})
	fmt.Printf("re-priced contract 3 in %v: %d/%d cells refolded; coastal AAL %.0f → %.0f\n",
		time.Since(start).Round(time.Millisecond), touched, inc.Cells(),
		incCell.Summary.AAL, after.Summary.AAL)
}
