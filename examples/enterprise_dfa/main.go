// Enterprise DFA: integrate a catastrophe book with custom investment,
// reserve and counterparty risk models under different dependency
// assumptions, and show how correlation fattens the enterprise tail —
// the reason stage 3 must simulate risks jointly rather than adding
// stand-alone capital numbers.
//
//	go run ./examples/enterprise_dfa
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dfa"
	"repro/risk"
)

func main() {
	ctx := context.Background()
	cfg := risk.DefaultConfig()
	cfg.Events = 5_000
	cfg.Contracts = 8
	cfg.Trials = 50_000
	cfg.Sampling = true

	study := risk.NewStudy(cfg)
	report, err := study.Run(ctx)
	if err != nil {
		log.Fatalf("enterprise_dfa: %v", err)
	}
	catAAL := report.Catastrophe.AAL
	fmt.Printf("catastrophe book: AAL %.0f, 99.5%% TVaR %.0f\n\n", catAAL, report.Catastrophe.TVaR995)

	// A custom enterprise risk set: heavier invested assets and a
	// fragile counterparty panel.
	sources := []dfa.Source{
		dfa.Investment{Assets: 30 * catAAL, MeanReturn: 0.04, Volatility: 0.15},
		dfa.Reserve{Reserves: 10 * catAAL, CoV: 0.12},
		dfa.Counterparty{Recoverables: 4 * catAAL, N: 20, PD: 0.02, LGD: 0.6, FactorRho: 0.35},
		dfa.Operational{Freq: 2, SevMean: 0.03 * catAAL, SevCoV: 2, StressBeta: 0.3},
	}

	fmt.Printf("%-22s %16s %16s\n", "dependency", "enterprise AAL", "99.5% TVaR")
	for _, rho := range []float64{0.0, 0.2, 0.5} {
		sum, err := study.IntegrateEnterprise(ctx, sources, rho)
		if err != nil {
			log.Fatalf("enterprise_dfa: rho=%v: %v", rho, err)
		}
		fmt.Printf("rho = %-16.1f %16.0f %16.0f\n", rho, sum.AAL, sum.TVaR995)
	}
	fmt.Println("\nnote: AAL barely moves with rho — dependency is a tail phenomenon.")
}
