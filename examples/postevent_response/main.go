// Post-event response: when a real catastrophe strikes, the book must
// be re-estimated in seconds — the rapid post-event modelling workflow
// of the authors' companion work (paper reference [2]). The estimator
// indexes the portfolio once, then prices incoming event bulletins
// interactively, with uncertainty bands, comparing the spatial-index
// path against a full exposure scan.
//
//	go run ./examples/postevent_response
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/exposure"
	"repro/internal/postevent"
)

func main() {
	ctx := context.Background()

	// Load the book: eight cedants' exposure databases.
	var dbs []*exposure.Database
	for i := 0; i < 8; i++ {
		cfg := exposure.DefaultConfig()
		cfg.NumLocations = 800
		db, err := exposure.Generate(cfg, uint64(100+i))
		if err != nil {
			log.Fatalf("postevent_response: %v", err)
		}
		dbs = append(dbs, db)
	}
	est, err := postevent.New(dbs, nil)
	if err != nil {
		log.Fatalf("postevent_response: %v", err)
	}
	fmt.Printf("book indexed: %d insured interests\n\n", est.Sites())

	// Three bulletins arrive as the event is tracked and upgraded.
	anchor := dbs[0].Locations[0]
	bulletins := []catalog.Event{
		{ID: 1, Peril: catalog.Hurricane, Lat: anchor.Lat - 1.5, Lon: anchor.Lon + 1.0, Magnitude: 42, RadiusKm: 150},
		{ID: 2, Peril: catalog.Hurricane, Lat: anchor.Lat - 0.5, Lon: anchor.Lon + 0.4, Magnitude: 48, RadiusKm: 180},
		{ID: 3, Peril: catalog.Hurricane, Lat: anchor.Lat, Lon: anchor.Lon, Magnitude: 54, RadiusKm: 200},
	}
	fmt.Printf("%-10s %12s %16s %16s %26s %12s\n",
		"bulletin", "sites hit", "exposed value", "est. gross", "90% band", "latency")
	for _, ev := range bulletins {
		res, err := est.Estimate(ctx, ev)
		if err != nil {
			log.Fatalf("postevent_response: bulletin %d: %v", ev.ID, err)
		}
		fmt.Printf("#%-9d %12d %16.0f %16.0f [%11.0f, %11.0f] %12v\n",
			ev.ID, res.SitesTouched, res.ExposedValue, res.GrossMean,
			res.Low, res.High, res.Elapsed.Round(1000))
	}

	// Index vs full scan on the final bulletin.
	fast, err := est.Estimate(ctx, bulletins[2])
	if err != nil {
		log.Fatal(err)
	}
	slow, err := est.EstimateFullScan(ctx, bulletins[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspatial index: %v vs full scan %v (same estimate: %.0f vs %.0f)\n",
		fast.Elapsed.Round(1000), slow.Elapsed.Round(1000), fast.GrossMean, slow.GrossMean)
}
