// Quickstart: run a complete three-stage risk analytics study through
// the public API and print the catastrophe and enterprise reports.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/risk"
)

func main() {
	cfg := risk.DefaultConfig()
	cfg.Events = 5_000
	cfg.Contracts = 8
	cfg.Trials = 50_000
	cfg.Sampling = true

	study := risk.NewStudy(cfg)
	report, err := study.Run(context.Background())
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("pipeline stages:")
	for _, s := range report.Stages {
		fmt.Printf("  %-16s %12v %12d bytes out\n", s.Name, s.Duration.Round(1e6), s.OutputBytes)
	}

	fmt.Printf("\ncatastrophe book: AAL %.0f, 99%% TVaR %.0f\n",
		report.Catastrophe.AAL, report.Catastrophe.TVaR99)
	if rp, ok := report.Catastrophe.ReturnPeriods[250]; ok {
		fmt.Printf("250-year PML (OEP): %.0f   250-year AEP: %.0f\n", rp.OEP, rp.AEP)
	}
	fmt.Printf("\nenterprise after DFA: AAL %.0f, 99.5%% TVaR %.0f\n",
		report.Enterprise.AAL, report.Enterprise.TVaR995)

	// The per-trial losses are available for custom analytics.
	losses, err := study.CatastropheLosses()
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, l := range losses {
		if l > worst {
			worst = l
		}
	}
	fmt.Printf("worst simulated year of %d: %.0f\n", len(losses), worst)
}
