// Root benchmark harness: one benchmark (family) per experiment
// E1–E18 from EXPERIMENTS.md. Absolute numbers are machine-dependent; the
// *shapes* asserted in EXPERIMENTS.md (who wins, by roughly what
// factor) are what reproduce the paper. cmd/benchtables prints the
// richer tables; these benches give `go test -bench` one-line
// comparables per experiment.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/cluster"
	"repro/internal/dfa"
	"repro/internal/diskstore"
	"repro/internal/faultinject"
	"repro/internal/gpusim"
	"repro/internal/layers"
	"repro/internal/mapreduce"
	"repro/internal/memstore"
	"repro/internal/rdbms"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/warehouse"
	"repro/internal/yelt"
	"repro/internal/ylt"
	"repro/risk"
)

var (
	benchOnce sync.Once
	benchScen *synth.Scenario // general scenario (with aggregate terms)
	benchOcc  *synth.Scenario // occurrence-only scenario (device engines)
	benchErr  error
)

// benchTrials is sized so the sequential engine takes O(100ms) per
// iteration — large enough to measure, small enough to iterate.
const benchTrials = 50_000

func scenarios(b *testing.B) (*synth.Scenario, *synth.Scenario) {
	b.Helper()
	benchOnce.Do(func() {
		p := synth.Params{
			Seed: 42, NumEvents: 5_000, NumContracts: 8,
			LocationsPerContract: 150, NumTrials: benchTrials,
			MeanEventsPerYear: 10, TwoLayers: true,
		}
		benchScen, benchErr = synth.Build(context.Background(), p)
		if benchErr != nil {
			return
		}
		p.OccurrenceOnly = true
		benchOcc, benchErr = synth.Build(context.Background(), p)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchScen, benchOcc
}

func aggInput(s *synth.Scenario) *aggregate.Input {
	return &aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
}

// --- E1: aggregate analysis, sequential vs parallel ---

func BenchmarkE1SequentialEngine(b *testing.B) {
	s, _ := scenarios(b)
	in := aggInput(s)
	cfg := aggregate.Config{Seed: 1, Sampling: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (aggregate.Sequential{}).Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkE1ParallelEngine(b *testing.B) {
	s, _ := scenarios(b)
	in := aggInput(s)
	cfg := aggregate.Config{Seed: 1, Sampling: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (aggregate.Parallel{}).Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// --- Loss-index ablation: the pre-joined event-major kernel vs the
// legacy per-(occurrence × contract) binary-search kernel, same
// Sequential trial loop, 100k trials on the default sparse book. ---

const idxBenchTrials = 100_000

func idxBenchInput(b *testing.B) *aggregate.Input {
	b.Helper()
	s, _ := scenarios(b)
	y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: idxBenchTrials}, 17)
	if err != nil {
		b.Fatal(err)
	}
	return &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
}

func BenchmarkIndexedKernel(b *testing.B) {
	in := idxBenchInput(b)
	if _, err := in.EnsureIndex(); err != nil {
		b.Fatal(err)
	}
	// Pin the indexed kernel: this benchmark measures the pre-flat
	// entry scan (the E12 family compares it against the flat layout).
	cfg := aggregate.Config{Seed: 1, Sampling: true, Kernel: aggregate.KernelIndexed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (aggregate.Sequential{}).Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(idxBenchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkLegacyLookupKernel(b *testing.B) {
	in := idxBenchInput(b)
	cfg := aggregate.Config{Seed: 1, Sampling: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (aggregate.LegacyLookup{}).Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(idxBenchTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// --- E12: the flat SoA trial kernel vs the indexed kernel vs the
// legacy lookup, expected and sampling modes, on the default
// 16-contract book at 100k trials (the EXPERIMENTS.md E12 claim:
// flat ≥1.5× indexed in expected mode, bit-identical always). ---

var (
	e12Once sync.Once
	e12In   *aggregate.Input
	e12Err  error
)

// e12Input builds the benchtables default book (16 contracts, 10k
// events) with a 100k-trial YELT, with both kernel layouts pre-built
// so no timing window pays the pre-join.
func e12Input(b *testing.B) *aggregate.Input {
	b.Helper()
	e12Once.Do(func() {
		var s *synth.Scenario
		s, e12Err = synth.Build(context.Background(), synth.Params{
			Seed: 42, NumEvents: 10_000, NumContracts: 16,
			LocationsPerContract: 250, NumTrials: 100_000,
			MeanEventsPerYear: 10, TwoLayers: true,
		})
		if e12Err != nil {
			return
		}
		e12In = &aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
		if _, e12Err = e12In.EnsureIndex(); e12Err != nil {
			return
		}
		_, e12Err = e12In.EnsureFlat()
	})
	if e12Err != nil {
		b.Fatal(e12Err)
	}
	return e12In
}

func e12Run(b *testing.B, eng aggregate.Engine, cfg aggregate.Config) {
	b.Helper()
	in := e12Input(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e5*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkE12FlatKernelExpected(b *testing.B) {
	// Pinned: the default kernel is now the blocked one (E14), so the
	// E12 single-trial flat measurements name their kernel explicitly.
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Kernel: aggregate.KernelFlat})
}

func BenchmarkE12IndexedKernelExpected(b *testing.B) {
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Kernel: aggregate.KernelIndexed})
}

func BenchmarkE12LegacyKernelExpected(b *testing.B) {
	e12Run(b, aggregate.LegacyLookup{}, aggregate.Config{Seed: 1})
}

func BenchmarkE12FlatKernelSampling(b *testing.B) {
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Sampling: true, Kernel: aggregate.KernelFlat})
}

func BenchmarkE12IndexedKernelSampling(b *testing.B) {
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Sampling: true, Kernel: aggregate.KernelIndexed})
}

func BenchmarkE12LegacyKernelSampling(b *testing.B) {
	e12Run(b, aggregate.LegacyLookup{}, aggregate.Config{Seed: 1, Sampling: true})
}

// --- E14: the trial-blocked flat kernel (the new default) vs the
// single-trial flat kernel, sweeping the block size, on the same
// 100k-trial book (the EXPERIMENTS.md E14 claim: blocked ≥1.2× flat
// in expected mode, bit-identical always, results independent of
// TrialBlock). ---

func BenchmarkE14BlockSizesExpected(b *testing.B) {
	for _, block := range []int{1, 32, 64, 128} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Kernel: aggregate.KernelBlocked, TrialBlock: block})
		})
	}
}

func BenchmarkE14BlockFlatExpected(b *testing.B) {
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Kernel: aggregate.KernelFlat})
}

func BenchmarkE14BlockSizesSampling(b *testing.B) {
	for _, block := range []int{1, 32, 64, 128} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Sampling: true, Kernel: aggregate.KernelBlocked, TrialBlock: block})
		})
	}
}

func BenchmarkE14BlockFlatSampling(b *testing.B) {
	e12Run(b, aggregate.Sequential{}, aggregate.Config{Seed: 1, Sampling: true, Kernel: aggregate.KernelFlat})
}

// --- E13: the flat SoA year-state kernel for the stateful
// reinstatements path vs the indexed nested-slice state machine, on
// the same 100k-trial book under market-standard terms (the
// EXPERIMENTS.md E13 claim: flat ≥1.5× indexed in expected mode,
// bit-identical always, premium ledger included). ---

func e13Run(b *testing.B, kernel aggregate.Kernel, sampling bool) {
	b.Helper()
	in := e12Input(b)
	terms := aggregate.StandardReinstatements(in.Portfolio)
	cfg := aggregate.Config{Seed: 1, Sampling: sampling, Kernel: kernel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rin := &aggregate.ReinstatementInput{Input: in, Terms: terms}
		if _, err := aggregate.RunReinstatements(context.Background(), rin, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e5*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkE13FlatReinstExpected(b *testing.B) {
	e13Run(b, aggregate.KernelFlat, false)
}

func BenchmarkE13IndexedReinstExpected(b *testing.B) {
	e13Run(b, aggregate.KernelIndexed, false)
}

func BenchmarkE13FlatReinstSampling(b *testing.B) {
	e13Run(b, aggregate.KernelFlat, true)
}

func BenchmarkE13IndexedReinstSampling(b *testing.B) {
	e13Run(b, aggregate.KernelIndexed, true)
}

// --- E2: the million-trial single-contract quote ---

func BenchmarkE2MillionTrialContract(b *testing.B) {
	s, _ := scenarios(b)
	y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: 1_000_000}, 7)
	if err != nil {
		b.Fatal(err)
	}
	in := &aggregate.Input{
		YELT:      y,
		ELTs:      s.ELTs[:1],
		Portfolio: singleContract(s, 0),
	}
	cfg := aggregate.Config{Seed: 2, Sampling: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (aggregate.Parallel{}).Run(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e6*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func singleContract(s *synth.Scenario, i int) *layers.Portfolio {
	c := s.Portfolio.Contracts[i]
	c.ELTIndex = 0
	return &layers.Portfolio{Contracts: []layers.Contract{c}}
}

// --- E3: data-volume generation throughput ---

func BenchmarkE3YELTGeneration(b *testing.B) {
	s, _ := scenarios(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: benchTrials}, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(y.SizeBytes())
	}
}

// --- E4: chunked vs naive device kernels (modeled cycles reported) ---

func BenchmarkE4ChunkedKernel(b *testing.B) {
	_, occ := scenarios(b)
	in := aggInput(occ)
	eng := &aggregate.Chunked{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), in, aggregate.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.LastStats.BlockCycles), "devcycles")
	b.ReportMetric(eng.LastStats.ModeledSeconds(gpusim.DefaultConfig())*1e3, "devms")
}

func BenchmarkE4NaiveKernel(b *testing.B) {
	_, occ := scenarios(b)
	in := aggInput(occ)
	eng := &aggregate.Chunked{Naive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), in, aggregate.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.LastStats.BlockCycles), "devcycles")
	b.ReportMetric(eng.LastStats.ModeledSeconds(gpusim.DefaultConfig())*1e3, "devms")
}

// --- E5: scan vs indexed random access ---

func e5Table(b *testing.B, s *synth.Scenario) *rdbms.Table {
	b.Helper()
	tbl, err := rdbms.New(1, 64)
	if err != nil {
		b.Fatal(err)
	}
	loss := map[uint64]float64{}
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			loss[uint64(r.EventID)] += r.MeanLoss
		}
	}
	for k, v := range loss {
		if err := tbl.Insert(k, []float64{v}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkE5RandomAccess(b *testing.B) {
	s, _ := scenarios(b)
	tbl := e5Table(b, s)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, occ := range s.YELT.Occs {
			if v, ok := tbl.Get(uint64(occ.EventID)); ok {
				sink += v[0]
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(len(s.YELT.Occs))*float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

func BenchmarkE5Scan(b *testing.B) {
	s, _ := scenarios(b)
	tbl := e5Table(b, s)
	var maxID uint32
	for _, o := range s.YELT.Occs {
		if o.EventID > maxID {
			maxID = o.EventID
		}
	}
	counts := make([]float64, maxID+1)
	for _, o := range s.YELT.Occs {
		counts[o.EventID]++
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		if err := tbl.Scan(func(k uint64, vals []float64) error {
			sink += vals[0] * counts[k]
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
	b.ReportMetric(float64(len(s.YELT.Occs))*float64(b.N)/b.Elapsed().Seconds(), "equiv-lookups/s")
}

// --- E6: in-memory vs MapReduce-over-files per-trial aggregation ---

func lossVec(s *synth.Scenario) []float64 {
	var maxID uint32
	for _, e := range s.ELTs {
		if n := e.Len(); n > 0 && e.Records[n-1].EventID > maxID {
			maxID = e.Records[n-1].EventID
		}
	}
	vec := make([]float64, maxID+1)
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			vec[r.EventID] += r.MeanLoss
		}
	}
	return vec
}

func BenchmarkE6InMemory(b *testing.B) {
	s, _ := scenarios(b)
	vec := lossVec(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := memstore.NewTable(memstore.Schema{
			Float64Cols: []string{"loss"}, Uint32Cols: []string{"trial"},
		}, nil, 1<<15)
		for trial := 0; trial < s.YELT.NumTrials; trial++ {
			for _, occ := range s.YELT.OccurrencesOf(trial) {
				var l float64
				if int(occ.EventID) < len(vec) {
					l = vec[occ.EventID]
				}
				if err := tbl.Append([]float64{l}, []uint32{uint32(trial)}); err != nil {
					b.Fatal(err)
				}
			}
		}
		sums := make([]float64, s.YELT.NumTrials)
		if err := tbl.Scan(func(v memstore.ChunkView) error {
			for r := 0; r < v.Rows(); r++ {
				sums[v.U32[0][r]] += v.F64[0][r]
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6MapReduce(b *testing.B) {
	s, _ := scenarios(b)
	vec := lossVec(s)
	dir, err := os.MkdirTemp("", "e6bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := diskstore.Create(dir, 4)
	if err != nil {
		b.Fatal(err)
	}
	const parts = 8
	per := (s.YELT.NumTrials + parts - 1) / parts
	type split struct{ part, lo, hi int }
	var splits []split
	for p := 0; p < parts; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > s.YELT.NumTrials {
			hi = s.YELT.NumTrials
		}
		if lo >= hi {
			break
		}
		sub, err := s.YELT.Slice(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.WritePartition("yelt", p, func(w io.Writer) error {
			_, err := sub.WriteTo(w)
			return err
		}); err != nil {
			b.Fatal(err)
		}
		splits = append(splits, split{p, lo, hi})
	}
	sum := func(_ uint64, vs []float64) (float64, error) {
		var t float64
		for _, v := range vs {
			t += v
		}
		return t, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mapreduce.Run(context.Background(), splits,
			func(_ context.Context, sp split, emit func(uint64, float64)) error {
				return store.ReadPartition("yelt", sp.part, func(r io.Reader) error {
					sub, err := yelt.Read(r)
					if err != nil {
						return err
					}
					for trial := 0; trial < sub.NumTrials; trial++ {
						var t float64
						for _, occ := range sub.OccurrencesOf(trial) {
							if int(occ.EventID) < len(vec) {
								t += vec[occ.EventID]
							}
						}
						emit(uint64(sp.lo+trial), t)
					}
					return nil
				})
			}, sum, sum, mapreduce.Config{Reducers: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: bounded-memory streaming stage 2 ---

// streamEnvelopeTrials exceeds every materialized benchmark in the
// file: the point of the streaming path is that trial count no longer
// multiplies resident memory.
const streamEnvelopeTrials = 1_000_000

// BenchmarkE10StreamingMillionTrials runs a fused 1M-trial stage 2
// (generation + aggregation, sampling on) without ever materializing
// the YELT, and reports the memory envelope: peak-resident trial bytes
// (peakMB) versus the table the run avoided building (matMB), plus
// their ratio (mat/peak — the ≥10× bounded-memory claim). Workers are
// pinned so the envelope is machine-independent.
func BenchmarkE10StreamingMillionTrials(b *testing.B) {
	s, _ := scenarios(b)
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8, BatchTrials: 4096}
	var res *aggregate.Result
	var gen *yelt.Generator
	for i := 0; i < b.N; i++ {
		g, err := yelt.NewGenerator(s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
		if err != nil {
			b.Fatal(err)
		}
		in := &aggregate.Input{Source: g, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = (aggregate.Parallel{}).Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gen = g
	}
	matBytes := yelt.TableBytes(streamEnvelopeTrials, gen.Streamed())
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.PeakResidentBytes)/1e6, "peakMB")
	b.ReportMetric(float64(matBytes)/1e6, "matMB")
	b.ReportMetric(float64(matBytes)/float64(res.PeakResidentBytes), "mat/peak")
}

// BenchmarkE10MaterializedBaseline is the same 1M-trial stage 2
// through the materialized path (generate the table, then aggregate) —
// the throughput and memory baseline the streaming numbers compare
// against.
func BenchmarkE10MaterializedBaseline(b *testing.B) {
	s, _ := scenarios(b)
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8}
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
		if err != nil {
			b.Fatal(err)
		}
		in := &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = (aggregate.Parallel{}).Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.PeakResidentBytes)/1e6, "peakMB")
}

// --- E11: partitioned stage 2 — MapReduce over re-derived, spilled, and materialized trials ---

// BenchmarkE11MapReduceRederive maps trial-range splits over the fused
// generator: every mapper read re-derives its trials (CPU traded for
// memory). Workers/batch pinned as in E10 so envelopes are comparable.
func BenchmarkE11MapReduceRederive(b *testing.B) {
	s, _ := scenarios(b)
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8, BatchTrials: 4096}
	eng := aggregate.MapReduce{}
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		g, err := yelt.NewGenerator(s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
		if err != nil {
			b.Fatal(err)
		}
		in := &aggregate.Input{Source: g, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = eng.Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.PeakResidentBytes)/1e6, "peakMB")
}

// BenchmarkE11MapReduceRescan spills the generated trials once into
// diskstore shards (outside the timer — the write is amortized across
// every later engine pass, which is the point of spilling), then times
// MapReduce passes that re-scan the shards from disk.
func BenchmarkE11MapReduceRescan(b *testing.B) {
	s, _ := scenarios(b)
	g, err := yelt.NewGenerator(s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := yelt.SpillToDir(context.Background(), g, b.TempDir(), 0, aggregate.DefaultSpillParts(streamEnvelopeTrials), 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	shardBytes, err := ds.SizeBytes()
	if err != nil {
		b.Fatal(err)
	}
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8, BatchTrials: 4096}
	eng := aggregate.MapReduce{}
	b.ResetTimer()
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		in := &aggregate.Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = eng.Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.PeakResidentBytes)/1e6, "peakMB")
	b.ReportMetric(float64(shardBytes)/1e6, "shardMB")
}

// BenchmarkE11MapReduceMaterialized is the same MapReduce job over the
// fully materialized table (generated per iteration, like the E10
// baseline) — the memory-unconstrained comparison point.
func BenchmarkE11MapReduceMaterialized(b *testing.B) {
	s, _ := scenarios(b)
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8}
	eng := aggregate.MapReduce{}
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
		if err != nil {
			b.Fatal(err)
		}
		in := &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = eng.Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.PeakResidentBytes)/1e6, "peakMB")
}

// --- E16: mapper placement over spilled shards ---

// benchPlacement spills once (outside the timer), then times MapReduce
// passes under the given mapper placement, reporting how many shard
// bytes each pass scanned node-locally vs pulled from a remote node.
// Results are bit-identical across placements; locality is the metric.
func benchPlacement(b *testing.B, place aggregate.Placement) {
	s, _ := scenarios(b)
	g, err := yelt.NewGenerator(s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
	if err != nil {
		b.Fatal(err)
	}
	parts := aggregate.DefaultSpillParts(streamEnvelopeTrials)
	if parts < 32 {
		parts = 32
	}
	ds, err := yelt.SpillToDir(context.Background(), g, b.TempDir(), 0, parts, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8, BatchTrials: 4096}
	eng := aggregate.MapReduce{Placement: place}
	b.ResetTimer()
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		in := &aggregate.Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = eng.Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.LocalBytes)/1e6, "localMB")
	b.ReportMetric(float64(res.RemoteBytes)/1e6, "remoteMB")
	if total := res.LocalBytes + res.RemoteBytes; total > 0 {
		b.ReportMetric(100*float64(res.LocalBytes)/float64(total), "local%")
	}
}

func BenchmarkE16AffinePlacement(b *testing.B) { benchPlacement(b, aggregate.PlaceAffine) }

func BenchmarkE16BlindPlacement(b *testing.B) { benchPlacement(b, aggregate.PlaceBlind) }

// --- E17: fault-tolerant stage 2 over replicated shards ---

// benchFault spills once at replication r=2 (outside the timer), then
// times MapReduce passes under the given deterministic fault spec.
// Every pass's result is bit-checked against a fault-free pass, so the
// timer covers completion *with* recovery — the fault-tolerance
// overhead is the metric, correctness is the invariant.
func benchFault(b *testing.B, spec string, speculate bool) {
	s, _ := scenarios(b)
	g, err := yelt.NewGenerator(s.Catalog, yelt.Config{NumTrials: streamEnvelopeTrials}, 7)
	if err != nil {
		b.Fatal(err)
	}
	parts := aggregate.DefaultSpillParts(streamEnvelopeTrials)
	if parts < 32 {
		parts = 32
	}
	ds, err := yelt.SpillToDir(context.Background(), g, b.TempDir(), 0, parts, 2, 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := aggregate.Config{Seed: 2, Sampling: true, Workers: 8, BatchTrials: 4096}
	want, err := aggregate.MapReduce{}.Run(context.Background(),
		&aggregate.Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := faultinject.Parse(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	eng := aggregate.MapReduce{MaxAttempts: 5, Speculate: speculate, Faults: plan}
	b.ResetTimer()
	var res *aggregate.Result
	for i := 0; i < b.N; i++ {
		in := &aggregate.Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio}
		res, err = eng.Run(context.Background(), in, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for t := range want.Portfolio.Agg {
		if res.Portfolio.Agg[t] != want.Portfolio.Agg[t] {
			b.Fatalf("diverged from fault-free run at trial %d", t)
		}
	}
	b.ReportMetric(float64(streamEnvelopeTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	b.ReportMetric(float64(res.MapRetries), "retries")
	b.ReportMetric(float64(res.ShardFailovers), "failovers")
	b.ReportMetric(float64(res.WorkersLost), "workersLost")
	b.ReportMetric(float64(res.SpecWins), "specWins")
}

func BenchmarkE17FaultFree(b *testing.B) { benchFault(b, "", false) }

func BenchmarkE17Rate10(b *testing.B) { benchFault(b, "rate=0.10", false) }

func BenchmarkE17RateAndKill(b *testing.B) { benchFault(b, "rate=0.10,kill=1@1", false) }

func BenchmarkE17Speculation(b *testing.B) { benchFault(b, "delay=0@40ms", true) }

// --- E7: provisioning policies over the bursty demand profile ---

func BenchmarkE7Elasticity(b *testing.B) {
	phases := cluster.PipelinePhases(3600)
	policies := []cluster.Policy{
		cluster.Static{N: 8}, cluster.Static{N: 5000}, cluster.Elastic{Max: 5000},
	}
	var results []*cluster.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = cluster.Compare(phases, policies)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(results) == 3 {
		b.ReportMetric(100*results[1].Utilization, "staticUtil%")
		b.ReportMetric(100*results[2].Utilization, "elasticUtil%")
	}
}

// --- E8: trial-count scaling per engine ---

func BenchmarkE8TrialsSweep(b *testing.B) {
	s, _ := scenarios(b)
	for _, trials := range []int{1_000, 10_000, 100_000} {
		y, err := yelt.Generate(context.Background(), s.Catalog, yelt.Config{NumTrials: trials}, 9)
		if err != nil {
			b.Fatal(err)
		}
		in := &aggregate.Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (aggregate.Parallel{}).Run(context.Background(), in,
					aggregate.Config{Seed: 3, Sampling: true}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// --- E9: DFA integration scaling with source count ---

func BenchmarkE9DFAIntegration(b *testing.B) {
	s, _ := scenarios(b)
	res, err := (aggregate.Parallel{}).Run(context.Background(), aggInput(s), aggregate.Config{})
	if err != nil {
		b.Fatal(err)
	}
	cat := res.Portfolio
	for _, k := range []int{2, 6, 24} {
		base := dfa.StandardSources(cat.Mean())
		sources := make([]dfa.Source, 0, k)
		for len(sources) < k {
			sources = append(sources, base[len(sources)%len(base)])
		}
		ig := &dfa.Integrator{Sources: sources}
		b.Run(fmt.Sprintf("sources=%d", k), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				dres, err := ig.Run(context.Background(), cat, dfa.Config{Seed: 7, Rho: 0.2})
				if err != nil {
					b.Fatal(err)
				}
				bytes = dres.TotalBytes
			}
			b.ReportMetric(float64(bytes)/1e6, "MB-out")
		})
	}
}

// --- E15: client-observed quote latency through the serving tier — a
// warmed serve.Server over a shared risk.Study behind real HTTP. One
// closed-loop client, so ns/op is the full request path: admission,
// queue, per-contract aggregate simulation, JSON. cmd/benchtables -e 15
// adds the multi-client calm/active/burst table. ---

var (
	e15Once sync.Once
	e15TS   *httptest.Server
	e15Err  error
)

func e15Server(b *testing.B) *httptest.Server {
	b.Helper()
	e15Once.Do(func() {
		study := risk.NewStudy(risk.Config{
			Seed: 42, Events: 2_000, Contracts: 8, LocationsPerContract: 150,
			Trials: 5_000, MeanEventsPerYear: 10, Rho: 0.2, Workers: 1,
		})
		srv := serve.New(study, serve.Config{Workers: runtime.GOMAXPROCS(0), DefaultTrials: 2_000})
		if err := srv.Warm(context.Background()); err != nil {
			e15Err = err
			return
		}
		e15TS = httptest.NewServer(srv.Handler())
	})
	if e15Err != nil {
		b.Fatal(e15Err)
	}
	return e15TS
}

func BenchmarkE15QuoteLatency(b *testing.B) {
	ts := e15Server(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"contract": %d, "trials": 2000}`, i%8)
		resp, err := http.Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("quote status = %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "quotes/s")
}

// --- E18: incremental warehouse cube — build, delta update, query ---

var (
	e18Once sync.Once
	e18PC   []*ylt.Table
	e18Err  error
)

// e18Tables runs stage 2 once over the cached scenario and returns
// the per-contract YLT registry every E18 benchmark builds from.
func e18Tables(b *testing.B) []*ylt.Table {
	b.Helper()
	s, _ := scenarios(b)
	e18Once.Do(func() {
		cfg := aggregate.Config{Seed: 1, Sampling: true, PerContract: true,
			Workers: runtime.GOMAXPROCS(0)}
		res, err := aggregate.Parallel{}.Run(context.Background(), aggInput(s), cfg)
		if err != nil {
			e18Err = err
			return
		}
		e18PC = res.PerContract
	})
	if e18Err != nil {
		b.Fatal(e18Err)
	}
	return e18PC
}

func BenchmarkE18BatchBuild(b *testing.B) {
	pc := e18Tables(b)
	in := &warehouse.Input{Tables: pc, Attrs: warehouse.DefaultAttrs(len(pc))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := warehouse.Build(context.Background(), in, warehouse.DefaultDims(), runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18IncrementalBuild(b *testing.B) {
	pc := e18Tables(b)
	attrs := warehouse.DefaultAttrs(len(pc))
	const batch = 1_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld, err := warehouse.NewBuilder(warehouse.DefaultDims(), attrs, benchTrials, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		for lo := 0; lo < benchTrials; lo += batch {
			k := batch
			if lo+k > benchTrials {
				k = benchTrials - lo
			}
			agg := make([][]float64, len(pc))
			occ := make([][]float64, len(pc))
			for ci, t := range pc {
				agg[ci] = t.Agg[lo : lo+k]
				occ[ci] = t.OccMax[lo : lo+k]
			}
			if err := bld.IngestBatch(lo, agg, occ); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bld.Finalize(context.Background(), pc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18Replace(b *testing.B) {
	pc := e18Tables(b)
	in := &warehouse.Input{Tables: pc, Attrs: warehouse.DefaultAttrs(len(pc))}
	cube, err := warehouse.Build(context.Background(), in, warehouse.DefaultDims(), runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	target := len(pc) / 2
	cur := cube.Contract(target)
	next := &ylt.Table{Name: cur.Name,
		Agg: make([]float64, benchTrials), OccMax: make([]float64, benchTrials)}
	for i := range next.Agg {
		next.Agg[i] = cur.Agg[i] * 1.25
		next.OccMax[i] = cur.OccMax[i] * 1.25
	}
	b.ResetTimer()
	// Each iteration swaps the live table for the scaled one (or
	// back), so Replace always sees the registry's current bits.
	for i := 0; i < b.N; i++ {
		if _, err := cube.Replace(context.Background(), target, cur, next); err != nil {
			b.Fatal(err)
		}
		cur, next = next, cur
	}
}

func BenchmarkE18CubeQuery(b *testing.B) {
	pc := e18Tables(b)
	in := &warehouse.Input{Tables: pc, Attrs: warehouse.DefaultAttrs(len(pc))}
	cube, err := warehouse.Build(context.Background(), in, warehouse.DefaultDims(), runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	filter := map[string]string{"region": "coastal"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.Query(filter); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE18DirectQuery(b *testing.B) {
	pc := e18Tables(b)
	in := &warehouse.Input{Tables: pc, Attrs: warehouse.DefaultAttrs(len(pc))}
	cube, err := warehouse.Build(context.Background(), in, warehouse.DefaultDims(), runtime.GOMAXPROCS(0))
	if err != nil {
		b.Fatal(err)
	}
	filter := map[string]string{"region": "coastal"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cube.RecomputeCell(filter); err != nil {
			b.Fatal(err)
		}
	}
}
