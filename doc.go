// Package repro reproduces Varghese & Rau-Chaplin, "Data Challenges in
// High-Performance Risk Analytics" (SC 2012, arXiv:1311.5685): the
// three-stage reinsurance risk analytics pipeline — catastrophe
// modelling, portfolio aggregate analysis, dynamic financial analysis —
// together with the data-management substrates the paper discusses
// (in-memory columnar analytics, distributed-file MapReduce, a
// traditional-RDBMS baseline, a simulated many-core device with
// shared/constant-memory chunking, and an elastic cluster model).
//
// The public API lives in repro/risk; runnable tools in cmd/; worked
// examples in examples/. DESIGN.md describes the three-stage pipeline
// and the pre-joined event-major loss index (internal/lossindex) every
// aggregate engine shares; EXPERIMENTS.md indexes the experiment
// reproductions. Root-level benchmarks (bench_test.go) regenerate
// every experiment's headline measurement.
package repro
