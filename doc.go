// Package repro reproduces Varghese & Rau-Chaplin, "Data Challenges in
// High-Performance Risk Analytics" (SC 2012, arXiv:1311.5685): the
// three-stage reinsurance risk analytics pipeline — catastrophe
// modelling, portfolio aggregate analysis, dynamic financial analysis —
// together with the data-management substrates the paper discusses
// (in-memory columnar analytics, distributed-file MapReduce, a
// traditional-RDBMS baseline, a simulated many-core device with
// shared/constant-memory chunking, and an elastic cluster model).
//
// The public API lives in repro/risk; runnable tools in cmd/; worked
// examples in examples/; the experiment reproduction index in
// DESIGN.md and EXPERIMENTS.md. Root-level benchmarks (bench_test.go)
// regenerate every experiment's headline measurement.
package repro
