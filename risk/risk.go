// Package risk is the public API of the high-performance risk
// analytics pipeline reproduced from Varghese & Rau-Chaplin, "Data
// Challenges in High-Performance Risk Analytics" (SC 2012). It wraps
// the three pipeline stages — catastrophe modelling, portfolio
// aggregate analysis, and dynamic financial analysis — behind a small
// surface: configure a Study, run it, read risk summaries, and price
// individual contracts in "real time" against a pre-simulated YELT.
//
// A minimal session:
//
//	study := risk.NewStudy(risk.DefaultConfig())
//	report, err := study.Run(ctx)
//	// report.Catastrophe.AAL, report.Enterprise.TVaR99, ...
//	quote, err := study.PriceContract(ctx, 0, 1_000_000)
package risk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/aggregate"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/faultinject"
	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/metrics"
	"repro/internal/postevent"
	"repro/internal/warehouse"
	"repro/internal/yelt"
)

// EngineKind selects the stage-2 aggregate-analysis engine.
type EngineKind string

// Available engines. Sequential is the paper's CPU baseline; Parallel
// is the native data-parallel engine; Chunked and Naive run on the
// simulated many-core device with and without shared-memory chunking;
// MapReduce runs stage 2 as a map/reduce job over trial-range splits
// (the companion paper's Hadoop shape), pairing naturally with Spill;
// Reinstatements runs the stateful occurrence-ordered path, eroding
// and reinstating layer limits in date order under market-standard
// terms (the fine-grained contractual-terms workload).
const (
	EngineSequential     EngineKind = "sequential"
	EngineParallel       EngineKind = "parallel"
	EngineChunked        EngineKind = "chunked"
	EngineNaive          EngineKind = "naive"
	EngineMapReduce      EngineKind = "mapreduce"
	EngineReinstatements EngineKind = "reinstatements"
)

func (k EngineKind) engine() (aggregate.Engine, error) {
	switch k {
	case EngineSequential:
		return aggregate.Sequential{}, nil
	case EngineParallel, "":
		return aggregate.Parallel{}, nil
	case EngineChunked:
		return &aggregate.Chunked{}, nil
	case EngineNaive:
		return &aggregate.Chunked{Naive: true}, nil
	case EngineMapReduce:
		return aggregate.MapReduce{}, nil
	case EngineReinstatements:
		return &aggregate.Reinstatements{}, nil
	default:
		return nil, fmt.Errorf("risk: unknown engine %q", k)
	}
}

// KernelKind selects the stage-2 trial-kernel data layout. Results
// are bit-identical across kernels; the choice is a performance
// lever, exposed so studies can benchmark the blocked and flat SoA
// layouts against the pre-flat indexed scan.
type KernelKind string

// Available kernels. The empty value means KernelBlocked.
const (
	KernelBlocked KernelKind = "blocked"
	KernelFlat    KernelKind = "flat"
	KernelIndexed KernelKind = "indexed"
)

func (k KernelKind) kernel() (aggregate.Kernel, error) {
	switch k {
	case KernelBlocked, "":
		return aggregate.KernelBlocked, nil
	case KernelFlat:
		return aggregate.KernelFlat, nil
	case KernelIndexed:
		return aggregate.KernelIndexed, nil
	default:
		return 0, fmt.Errorf("risk: unknown kernel %q", k)
	}
}

// Config sizes a study. Zero fields take defaults.
type Config struct {
	Seed                 uint64
	Events               int
	Contracts            int
	LocationsPerContract int
	Trials               int
	MeanEventsPerYear    float64
	Engine               EngineKind
	// Kernel selects the stage-2 trial-kernel layout ("" or
	// KernelBlocked for the blocked SoA default, KernelFlat for the
	// trial-at-a-time flat scan, KernelIndexed to pin the pre-flat
	// scan). Bit-identical results in every case.
	Kernel KernelKind
	// TrialBlock is the blocked kernel's trial-block size; 0 means the
	// engine default. Results are bit-independent of the value.
	TrialBlock int
	// Sampling enables secondary-uncertainty sampling in stage 2.
	Sampling bool
	// Streaming runs stage 2 (and PriceContract quotes) in bounded
	// memory: trial batches are re-derived on demand instead of
	// materializing the YELT. Results are bit-identical to the
	// materialized path, so the choice is purely a memory/trial-count
	// trade.
	Streaming bool
	// BatchTrials bounds the per-worker resident batch in streaming
	// mode; 0 means the engine default.
	BatchTrials int
	// Spill (implies streaming stage 2) generates the trial stream once
	// into partitioned diskstore shards and has the engine re-scan them
	// from disk instead of re-deriving trials per pass.
	Spill bool
	// SpillDir roots the spill store; "" uses a temp dir removed after
	// stage 2.
	SpillDir string
	// SpillParts is the spill shard count; 0 picks a default from the
	// trial count.
	SpillParts int
	// SpillNodes is the spill store's simulated storage-node count; 0
	// means the engine default. Shard-affine engines (EngineMapReduce
	// over a spilled source) place mappers against these nodes.
	SpillNodes int
	// SpillReplicas writes each spilled shard to this many distinct
	// storage nodes (clamped to SpillNodes; 0 or 1 means no
	// replication). With 2 or more, stage 2 survives the loss of any
	// single replica by failing over to a survivor.
	SpillReplicas int
	// SpillAttach runs stage 2 over shards an earlier process spilled
	// into SpillDir (required), re-attached via the spill manifest
	// instead of generated — the aggregate half of a two-process
	// spill/aggregate handoff. The trial count comes from the shards.
	SpillAttach bool
	// FaultSpec injects deterministic faults into stage 2 (see
	// faultinject.Parse): comma-separated rules like
	// "rate=0.1,shard=3@2,kill=1@4,delay=2@50ms". Results must stay
	// bit-identical to a fault-free run; FaultStats reports the
	// recoveries. "" injects nothing.
	FaultSpec string
	// FaultSeed seeds the fault plan's random draws; 0 falls back to
	// Seed so a study is chaos-reproducible by default.
	FaultSeed uint64
	// Speculate turns on speculative re-execution of straggling map
	// tasks (EngineMapReduce only): backups launch for tasks running
	// well past the completed-task percentile, first finisher wins.
	Speculate bool
	// Provision drives per-stage worker counts from an elasticity
	// policy instead of the static Workers bound: "static:N" (fixed
	// fleet) or "elastic:N" (scale to each stage's demand, capped at
	// N). "" keeps static Workers.
	Provision string
	// CubeDims, when non-empty, materializes the warehouse data cube
	// over the named contract-attribute dimensions during Run (e.g.
	// {"region", "lob"}); cube cells are then served by CubeQuery
	// without touching the simulation. Empty = no cube.
	CubeDims []string
	// Rho correlates the DFA risk sources with the catastrophe book.
	Rho float64
	// Workers bounds parallelism everywhere; 0 means all cores.
	Workers int
}

// DefaultConfig returns a configuration that runs a meaningful study
// in seconds on a laptop.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Events:               10_000,
		Contracts:            16,
		LocationsPerContract: 300,
		Trials:               100_000,
		MeanEventsPerYear:    10,
		Engine:               EngineParallel,
		Rho:                  0.25,
	}
}

// Summary is a portfolio risk report.
type Summary struct {
	Name    string
	Trials  int
	AAL     float64
	StdDev  float64
	VaR99   float64
	TVaR99  float64
	VaR995  float64
	TVaR995 float64
	// ReturnPeriods maps a return period in years to its (OEP, AEP)
	// losses; OEP is 0 when occurrence detail is unavailable.
	ReturnPeriods map[float64]ReturnLosses
}

// ReturnLosses is one return-period row.
type ReturnLosses struct{ OEP, AEP float64 }

func toSummary(s *metrics.Summary) Summary {
	out := Summary{
		Name: s.Name, Trials: s.Trials, AAL: s.AAL, StdDev: s.AggStdDev,
		VaR99: s.VaR99, TVaR99: s.TVaR99, VaR995: s.VaR995, TVaR995: s.TVaR995,
		ReturnPeriods: make(map[float64]ReturnLosses, len(s.ReturnRows)),
	}
	for _, r := range s.ReturnRows {
		out.ReturnPeriods[r.ReturnPeriod] = ReturnLosses{OEP: r.OEP, AEP: r.AEP}
	}
	return out
}

// StageStats reports one pipeline stage's cost.
type StageStats struct {
	Name        string
	Duration    time.Duration
	OutputBytes int64
	// Faults counts the stage's fault recoveries (stage 2 under a
	// FaultSpec or Speculate; zero elsewhere).
	Faults FaultStats
}

// FaultStats accounts how much chaos a run absorbed: failed map
// attempts and the retries that recovered them, speculative backups
// launched and won, shard reads failed over to a surviving replica,
// and lane workers lost to node kills. Counters are observability
// only — any study that completes is bit-identical to its fault-free
// twin.
type FaultStats struct {
	MapFailures    int64
	MapRetries     int64
	SpecLaunched   int64
	SpecWins       int64
	ShardFailovers int64
	WorkersLost    int64
}

// Any reports whether any fault-model event occurred.
func (f FaultStats) Any() bool {
	return f.MapFailures+f.MapRetries+f.SpecLaunched+f.SpecWins+f.ShardFailovers+f.WorkersLost > 0
}

// Report is the result of a full study run.
type Report struct {
	Stages      []StageStats
	Catastrophe Summary
	Enterprise  Summary
}

// Study is a configured pipeline instance. Create with NewStudy.
//
// Concurrency: PriceContract and WarmQuotes are safe to call
// concurrently with each other. Once stage 1 has completed (after
// RunModelling, WarmQuotes, or a full Run), a single Run may also
// proceed concurrently with quote calls — quotes only read the
// immutable stage-1 artifacts, which an idempotent Run no longer
// regenerates. All other method combinations require external
// serialization.
type Study struct {
	cfg       Config
	p         *core.Pipeline
	ran       bool
	postEvent *postevent.Estimator
	// quoteIdx/quoteFlat cache the single-contract loss index and its
	// flat kernel layout per contract, so repeated real-time quotes
	// skip the pre-join as well as stage 1. quoteMu guards both maps
	// and PriceContract's lazy pipeline/stage-1 initialization, making
	// concurrent PriceContract calls safe with each other; the
	// Study-wide "not safe for concurrent method calls" contract still
	// applies to mixing PriceContract with other methods.
	quoteMu   sync.Mutex
	quoteIdx  map[int]*lossindex.Index
	quoteFlat map[int]*lossindex.Flat
	// faultMu guards faults, the fault-recovery counters latched by the
	// last completed Run, so a serving tier can poll FaultStats
	// concurrently with a run in flight.
	faultMu sync.Mutex
	faults  FaultStats
	// cubeMu guards cube, the warehouse cube latched by the last
	// completed Run, so a serving tier can answer CubeQuery and
	// CubeInfo concurrently with a run in flight.
	cubeMu sync.Mutex
	cube   *warehouse.Cube
}

// NewStudy returns an unexecuted study.
func NewStudy(cfg Config) *Study {
	return &Study{cfg: cfg}
}

func (s *Study) pipeline() (*core.Pipeline, error) {
	if s.p != nil {
		return s.p, nil
	}
	eng, err := s.cfg.Engine.engine()
	if err != nil {
		return nil, err
	}
	kern, err := s.cfg.Kernel.kernel()
	if err != nil {
		return nil, err
	}
	policy, err := cluster.ParsePolicy(s.cfg.Provision)
	if err != nil {
		return nil, fmt.Errorf("risk: %w", err)
	}
	var plan *faultinject.Plan
	if s.cfg.FaultSpec != "" {
		seed := s.cfg.FaultSeed
		if seed == 0 {
			seed = s.cfg.Seed
		}
		plan, err = faultinject.Parse(s.cfg.FaultSpec, seed)
		if err != nil {
			return nil, fmt.Errorf("risk: %w", err)
		}
	}
	s.p = core.New(core.Config{
		Seed:                 s.cfg.Seed,
		NumEvents:            s.cfg.Events,
		NumContracts:         s.cfg.Contracts,
		LocationsPerContract: s.cfg.LocationsPerContract,
		MeanEventsPerYear:    s.cfg.MeanEventsPerYear,
		NumTrials:            s.cfg.Trials,
		Engine:               eng,
		Kernel:               kern,
		TrialBlock:           s.cfg.TrialBlock,
		Sampling:             s.cfg.Sampling,
		Streaming:            s.cfg.Streaming,
		BatchTrials:          s.cfg.BatchTrials,
		Spill:                s.cfg.Spill,
		SpillDir:             s.cfg.SpillDir,
		SpillParts:           s.cfg.SpillParts,
		SpillNodes:           s.cfg.SpillNodes,
		SpillReplicas:        s.cfg.SpillReplicas,
		SpillAttach:          s.cfg.SpillAttach,
		Faults:               plan,
		Speculate:            s.cfg.Speculate,
		Provision:            policy,
		CubeDims:             s.cfg.CubeDims,
		Rho:                  s.cfg.Rho,
		Workers:              s.cfg.Workers,
		TwoLayers:            true,
	})
	return s.p, nil
}

// Run executes all three stages and returns the study report.
func (s *Study) Run(ctx context.Context) (*Report, error) {
	p, err := s.pipeline()
	if err != nil {
		return nil, err
	}
	rep, err := p.Run(ctx)
	if err != nil {
		return nil, err
	}
	s.ran = true
	out := &Report{
		Catastrophe: toSummary(rep.Catastrophe),
		Enterprise:  toSummary(rep.Enterprise),
	}
	var total FaultStats
	for _, st := range rep.Stages {
		f := FaultStats{
			MapFailures:    st.Faults.MapFailures,
			MapRetries:     st.Faults.MapRetries,
			SpecLaunched:   st.Faults.SpecLaunched,
			SpecWins:       st.Faults.SpecWins,
			ShardFailovers: st.Faults.ShardFailovers,
			WorkersLost:    st.Faults.WorkersLost,
		}
		out.Stages = append(out.Stages, StageStats{
			Name: st.Name, Duration: st.Duration, OutputBytes: st.OutputBytes,
			Faults: f,
		})
		total.MapFailures += f.MapFailures
		total.MapRetries += f.MapRetries
		total.SpecLaunched += f.SpecLaunched
		total.SpecWins += f.SpecWins
		total.ShardFailovers += f.ShardFailovers
		total.WorkersLost += f.WorkersLost
	}
	s.faultMu.Lock()
	s.faults = total
	s.faultMu.Unlock()
	s.cubeMu.Lock()
	s.cube = p.Cube
	s.cubeMu.Unlock()
	return out, nil
}

// ErrCubeNotBuilt is returned by the cube query methods before a cube
// exists: the study has not run yet, or Config.CubeDims is empty.
var ErrCubeNotBuilt = errors.New("risk: no cube built (set Config.CubeDims and run the study)")

// ErrNoCubeCell is returned when no materialized cube cell matches a
// query filter — an unknown dimension value, a non-cube dimension, or
// an empty filter.
var ErrNoCubeCell = errors.New("risk: no cube cell matches the filter")

// cubeHandle returns the cube latched by the last completed Run.
func (s *Study) cubeHandle() (*warehouse.Cube, error) {
	s.cubeMu.Lock()
	defer s.cubeMu.Unlock()
	if s.cube == nil {
		return nil, ErrCubeNotBuilt
	}
	return s.cube, nil
}

// CubeQuery serves a pre-computed risk summary from the warehouse
// cube for a dimension filter such as {"region": "coastal"} — a
// dictionary lookup, no simulation. Safe to call concurrently with
// other methods once a Run has completed.
func (s *Study) CubeQuery(filter map[string]string) (Summary, error) {
	cube, err := s.cubeHandle()
	if err != nil {
		return Summary{}, err
	}
	cell, err := cube.Query(filter)
	if err != nil {
		return Summary{}, fmt.Errorf("%w: %v", ErrNoCubeCell, err)
	}
	return toSummary(cell.Summary), nil
}

// CubeQueryDirect re-derives the same summary from the cube's
// per-contract registry, bypassing the pre-computed cell — the
// self-check behind the serving tier's check=direct mode. It must
// match CubeQuery exactly.
func (s *Study) CubeQueryDirect(filter map[string]string) (Summary, error) {
	cube, err := s.cubeHandle()
	if err != nil {
		return Summary{}, err
	}
	sum, err := cube.RecomputeCell(filter)
	if err != nil {
		if errors.Is(err, warehouse.ErrNoCell) {
			return Summary{}, fmt.Errorf("%w: %v", ErrNoCubeCell, err)
		}
		return Summary{}, err
	}
	return toSummary(sum), nil
}

// CubeInfo describes the study's materialized cube for stats
// endpoints.
type CubeInfo struct {
	Built     bool
	Dims      []string
	Cells     int
	SizeBytes int64
}

// CubeInfo reports the cube's shape (zero value before a cube
// exists). Safe to call concurrently with other methods.
func (s *Study) CubeInfo() CubeInfo {
	s.cubeMu.Lock()
	cube := s.cube
	s.cubeMu.Unlock()
	if cube == nil {
		return CubeInfo{}
	}
	return CubeInfo{Built: true, Dims: cube.Dims(), Cells: cube.Cells(), SizeBytes: cube.SizeBytes()}
}

// FaultStats returns the fault-recovery counters latched by the last
// completed Run (zero before any run, or for fault-free studies).
// Safe to call concurrently with other methods, so a serving tier can
// surface chaos counters on its stats endpoint.
func (s *Study) FaultStats() FaultStats {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.faults
}

// CatastropheLosses returns a copy of the per-trial catastrophe
// aggregate losses (the cat YLT). Run must have completed.
func (s *Study) CatastropheLosses() ([]float64, error) {
	if !s.ran {
		return nil, errors.New("risk: study has not run")
	}
	out := make([]float64, len(s.p.CatYLT.Agg))
	copy(out, s.p.CatYLT.Agg)
	return out, nil
}

// EnterpriseLosses returns a copy of the per-trial enterprise losses
// after DFA integration. Run must have completed.
func (s *Study) EnterpriseLosses() ([]float64, error) {
	if !s.ran {
		return nil, errors.New("risk: study has not run")
	}
	out := make([]float64, len(s.p.DFAResult.Enterprise.Agg))
	copy(out, s.p.DFAResult.Enterprise.Agg)
	return out, nil
}

// Quote is a real-time contract pricing result — the paper's flagship
// stage-2 use case ("A 1 million trial aggregate simulation on a
// typical contract only takes 25 seconds and can therefore support
// real-time pricing", §II).
type Quote struct {
	ContractID uint32
	Trials     int
	AAL        float64
	StdDev     float64
	TVaR99     float64
	PML250     float64
	// Premium is a standard-deviation-loaded technical premium:
	// AAL + 0.35·σ.
	Premium float64
	// Elapsed is the wall-clock simulation time for the quote.
	Elapsed time.Duration
}

// NumContracts reports how many contracts the study's book holds (the
// configured count, or the default when unset). It is cheap, never
// triggers stage 1, and is safe to call concurrently.
func (s *Study) NumContracts() int {
	if s.cfg.Contracts > 0 {
		return s.cfg.Contracts
	}
	return core.DefaultConfig().NumContracts
}

// ensureModelled initializes the pipeline and lazily runs stage 1 if
// it has not run yet, under quoteMu so concurrent quote paths
// initialize exactly once.
func (s *Study) ensureModelled(ctx context.Context) (*core.Pipeline, error) {
	s.quoteMu.Lock()
	defer s.quoteMu.Unlock()
	p, err := s.pipeline()
	if err != nil {
		return nil, err
	}
	if p.Catalog == nil {
		if err := p.RunStage1(ctx); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// quoteLayout returns the single-contract portfolio view plus the
// cached per-contract loss index and flat kernel layout, building and
// caching them under quoteMu on first use.
func (s *Study) quoteLayout(p *core.Pipeline, contract int) (*lossindex.Index, *lossindex.Flat, *layers.Portfolio, error) {
	single := &layers.Portfolio{Contracts: []layers.Contract{{
		ID:       p.Portfolio.Contracts[contract].ID,
		ELTIndex: 0,
		Layers:   p.Portfolio.Contracts[contract].Layers,
	}}}
	s.quoteMu.Lock()
	defer s.quoteMu.Unlock()
	if s.quoteIdx == nil {
		s.quoteIdx = make(map[int]*lossindex.Index)
		s.quoteFlat = make(map[int]*lossindex.Flat)
	}
	idx := s.quoteIdx[contract]
	if idx == nil {
		var err error
		idx, err = lossindex.Build(p.ELTs[contract:contract+1], single)
		if err != nil {
			return nil, nil, nil, err
		}
		s.quoteIdx[contract] = idx
	}
	flat := s.quoteFlat[contract]
	if flat == nil {
		var err error
		flat, err = lossindex.Flatten(idx, single)
		if err != nil {
			return nil, nil, nil, err
		}
		s.quoteFlat[contract] = flat
	}
	return idx, flat, single, nil
}

// WarmQuotes lazily runs stage 1 if needed and pre-builds every
// contract's quote layout (single-contract loss index + flat kernel
// layout), so the first real-time quote on any contract pays no
// initialization cost. A serving tier calls this once at startup.
// Safe to call concurrently with PriceContract.
func (s *Study) WarmQuotes(ctx context.Context) error {
	p, err := s.ensureModelled(ctx)
	if err != nil {
		return err
	}
	for c := range p.ELTs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, _, _, err := s.quoteLayout(p, c); err != nil {
			return err
		}
	}
	return nil
}

// PriceContract runs a dedicated aggregate simulation for one contract
// (by index) over the given trial count, generating a fresh YELT of
// that length and simulating with secondary uncertainty. Stage 1 must
// have run (a full Run, or RunModelling); if it has not, the first
// quote runs it lazily. The contract index and the configured kernel
// are validated before any lazy initialization, so an invalid request
// fails in microseconds instead of after seconds of simulation.
func (s *Study) PriceContract(ctx context.Context, contract int, trials int) (*Quote, error) {
	kern, err := s.cfg.Kernel.kernel()
	if err != nil {
		return nil, err
	}
	if n := s.NumContracts(); contract < 0 || contract >= n {
		return nil, fmt.Errorf("risk: contract %d of %d", contract, n)
	}
	p, err := s.ensureModelled(ctx)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		trials = 1_000_000
	}
	start := time.Now()
	// Quote simulations follow the study's streaming setting: streaming
	// derives trial batches on demand (memory bounded by batch × workers
	// regardless of trial count), materialized pre-simulates the table.
	// Both yield bit-identical quotes.
	qin := &aggregate.Input{}
	ycfg := yelt.Config{NumTrials: trials, Workers: s.cfg.Workers}
	if s.cfg.Streaming {
		g, err := yelt.NewGenerator(p.Catalog, ycfg, s.cfg.Seed+101)
		if err != nil {
			return nil, err
		}
		qin.Source = g
	} else {
		y, err := yelt.Generate(ctx, p.Catalog, ycfg, s.cfg.Seed+101)
		if err != nil {
			return nil, err
		}
		qin.YELT = y
	}
	idx, flat, single, err := s.quoteLayout(p, contract)
	if err != nil {
		return nil, err
	}
	qin.ELTs = p.ELTs[contract : contract+1]
	qin.Portfolio = single
	qin.Index = idx
	qin.Flat = flat
	res, err := (aggregate.Parallel{}).Run(ctx, qin, aggregate.Config{
		Seed: s.cfg.Seed + 103, Sampling: true,
		Workers: s.cfg.Workers, BatchTrials: s.cfg.BatchTrials,
		Kernel: kern, TrialBlock: s.cfg.TrialBlock,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	sum, err := metrics.Summarize(res.Portfolio)
	if err != nil {
		return nil, err
	}
	pml, err := metrics.PML(res.Portfolio, 250)
	if err != nil {
		return nil, err
	}
	return &Quote{
		ContractID: single.Contracts[0].ID,
		Trials:     trials,
		AAL:        sum.AAL,
		StdDev:     sum.AggStdDev,
		TVaR99:     sum.TVaR99,
		PML250:     pml,
		Premium:    sum.AAL + 0.35*sum.AggStdDev,
		Elapsed:    elapsed,
	}, nil
}

// RunModelling executes only stage 1 (catalogue + exposure + ELTs),
// enough to start pricing contracts without a full portfolio study.
func (s *Study) RunModelling(ctx context.Context) error {
	_, err := s.ensureModelled(ctx)
	return err
}

// IntegrateEnterprise reruns stage 3 over the study's catastrophe YLT
// with custom sources — the DFA entry point for users who want their
// own risk models.
func (s *Study) IntegrateEnterprise(ctx context.Context, sources []dfa.Source, rho float64) (Summary, error) {
	if !s.ran {
		return Summary{}, errors.New("risk: study has not run")
	}
	ig := &dfa.Integrator{Sources: sources}
	res, err := ig.Run(ctx, s.p.CatYLT, dfa.Config{Seed: s.cfg.Seed + 31, Rho: rho, Workers: s.cfg.Workers})
	if err != nil {
		return Summary{}, err
	}
	sum, err := metrics.Summarize(res.Enterprise)
	if err != nil {
		return Summary{}, err
	}
	return toSummary(sum), nil
}
