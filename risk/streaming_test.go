package risk

import (
	"context"
	"testing"
)

// A streaming study must be indistinguishable from a materialized one
// in every number it reports — stage 2's per-trial catastrophe losses
// bit-for-bit, and real-time quotes field-for-field — differing only
// in the memory its stage report accounts.
func TestStreamingStudyMatchesMaterialized(t *testing.T) {
	mat := NewStudy(smallConfig(9))
	matRep, err := mat.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scfg := smallConfig(9)
	scfg.Streaming = true
	scfg.BatchTrials = 137 // does not divide the 1500 trials
	str := NewStudy(scfg)
	strRep, err := str.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	matLoss, err := mat.CatastropheLosses()
	if err != nil {
		t.Fatal(err)
	}
	strLoss, err := str.CatastropheLosses()
	if err != nil {
		t.Fatal(err)
	}
	if len(matLoss) != len(strLoss) {
		t.Fatalf("loss lengths %d vs %d", len(matLoss), len(strLoss))
	}
	for i := range matLoss {
		if matLoss[i] != strLoss[i] {
			t.Fatalf("trial %d: materialized %v vs streaming %v", i, matLoss[i], strLoss[i])
		}
	}
	if matRep.Catastrophe.AAL != strRep.Catastrophe.AAL {
		t.Fatalf("AAL %v vs %v", matRep.Catastrophe.AAL, strRep.Catastrophe.AAL)
	}

	// The stage report accounts the memory envelope, not the table:
	// streaming's portfolio-risk bytes must come in below materialized.
	var matS2, strS2 int64
	for _, s := range matRep.Stages {
		if s.Name == "portfolio-risk" {
			matS2 = s.OutputBytes
		}
	}
	for _, s := range strRep.Stages {
		if s.Name == "portfolio-risk" {
			strS2 = s.OutputBytes
		}
	}
	if matS2 == 0 || strS2 == 0 {
		t.Fatal("missing portfolio-risk stage lines")
	}
	if strS2 >= matS2 {
		t.Fatalf("streaming stage-2 bytes %d not below materialized %d", strS2, matS2)
	}
}

// The spilled MapReduce study — the paper's distributed shape end to
// end — must report the same losses as the default materialized
// Parallel study (sampling draws are trial-keyed, so even the engine
// swap preserves every number).
func TestSpilledMapReduceStudyMatchesMaterialized(t *testing.T) {
	mat := NewStudy(smallConfig(11))
	if _, err := mat.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	scfg := smallConfig(11)
	scfg.Engine = EngineMapReduce
	scfg.Spill = true
	scfg.SpillParts = 3
	scfg.BatchTrials = 137
	sp := NewStudy(scfg)
	if _, err := sp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	matLoss, err := mat.CatastropheLosses()
	if err != nil {
		t.Fatal(err)
	}
	spLoss, err := sp.CatastropheLosses()
	if err != nil {
		t.Fatal(err)
	}
	for i := range matLoss {
		if matLoss[i] != spLoss[i] {
			t.Fatalf("trial %d: materialized %v vs spilled mapreduce %v", i, matLoss[i], spLoss[i])
		}
	}
}

// Quotes must also be mode-independent: PriceContract through a
// streaming study equals the materialized quote field-for-field
// (Elapsed aside).
func TestStreamingQuoteMatchesMaterialized(t *testing.T) {
	mat := NewStudy(smallConfig(11))
	scfg := smallConfig(11)
	scfg.Streaming = true
	str := NewStudy(scfg)
	const trials = 4000
	mq, err := mat.PriceContract(context.Background(), 1, trials)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := str.PriceContract(context.Background(), 1, trials)
	if err != nil {
		t.Fatal(err)
	}
	if mq.ContractID != sq.ContractID || mq.Trials != sq.Trials {
		t.Fatalf("quote identity differs: %+v vs %+v", mq, sq)
	}
	if mq.AAL != sq.AAL || mq.StdDev != sq.StdDev || mq.TVaR99 != sq.TVaR99 ||
		mq.PML250 != sq.PML250 || mq.Premium != sq.Premium {
		t.Fatalf("quote numbers differ across modes:\nmaterialized %+v\nstreaming    %+v", mq, sq)
	}
}
