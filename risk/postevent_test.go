package risk

import (
	"context"
	"testing"
)

func TestEstimateEvent(t *testing.T) {
	study := NewStudy(smallConfig(30))
	if err := study.RunModelling(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A large hurricane over the coastal peak zone (see
	// catalog.DefaultRegions).
	res, err := study.EstimateEvent(context.Background(), EventBulletin{
		Peril: "HU", Lat: 28, Lon: -89, Magnitude: 55, RadiusKm: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesTouched == 0 {
		t.Fatal("a giant coastal hurricane should touch exposure")
	}
	if res.GrossMean <= 0 || res.Low > res.GrossMean || res.High < res.GrossMean {
		t.Fatalf("estimate inconsistent: %+v", res)
	}
	// Second call reuses the estimator.
	res2, err := study.EstimateEvent(context.Background(), EventBulletin{
		Peril: "HU", Lat: 28, Lon: -89, Magnitude: 55, RadiusKm: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.GrossMean != res.GrossMean {
		t.Fatal("repeat bulletin should be deterministic")
	}
}

func TestEstimateEventLazyStage1(t *testing.T) {
	// EstimateEvent without prior Run/RunModelling triggers stage 1.
	study := NewStudy(smallConfig(31))
	if _, err := study.EstimateEvent(context.Background(), EventBulletin{
		Peril: "EQ", Lat: 28, Lon: -89, Magnitude: 8, RadiusKm: 100,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateEventValidation(t *testing.T) {
	study := NewStudy(smallConfig(32))
	if _, err := study.EstimateEvent(context.Background(), EventBulletin{
		Peril: "XX", Lat: 0, Lon: 0, Magnitude: 1, RadiusKm: 10,
	}); err == nil {
		t.Fatal("unknown peril should error")
	}
	if _, err := study.EstimateEvent(context.Background(), EventBulletin{
		Peril: "EQ", Lat: 0, Lon: 0, Magnitude: 1, RadiusKm: 0,
	}); err == nil {
		t.Fatal("zero radius should error")
	}
}

func TestAllPerilCodes(t *testing.T) {
	for _, code := range []string{"EQ", "HU", "FL", "WS", "TO"} {
		if _, err := (EventBulletin{Peril: code}).peril(); err != nil {
			t.Errorf("peril %q: %v", code, err)
		}
	}
}
