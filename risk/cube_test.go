package risk

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/ylt"
)

// TestCubeQueryMatchesDirectSummarize is the serving-tier acceptance
// gate at the API layer: a pre-computed cube summary must match
// metrics.Summarize over the directly-combined member YLTs exactly,
// and CubeQueryDirect must agree with CubeQuery.
func TestCubeQueryMatchesDirectSummarize(t *testing.T) {
	cfg := smallConfig(3)
	cfg.Contracts = 6
	cfg.Sampling = true
	cfg.CubeDims = []string{"region", "lob"}
	study := NewStudy(cfg)

	if _, err := study.CubeQuery(map[string]string{"region": "coastal"}); !errors.Is(err, ErrCubeNotBuilt) {
		t.Fatalf("pre-run query: err = %v", err)
	}

	if _, err := study.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	filter := map[string]string{"region": "coastal"}
	served, err := study.CubeQuery(filter)
	if err != nil {
		t.Fatal(err)
	}

	// Direct computation from the stage-2 per-contract tables: the
	// default synthetic attrs cycle regions with period 4, so coastal
	// holds contracts 0 and 4 of the 6-contract book.
	pc := study.p.AggResult.PerContract
	combined, err := ylt.Combine("region=coastal", pc[0], pc[4])
	if err != nil {
		t.Fatal(err)
	}
	direct, err := metrics.Summarize(combined)
	if err != nil {
		t.Fatal(err)
	}
	if want := toSummary(direct); !reflect.DeepEqual(served, want) {
		t.Fatalf("served summary differs from direct Summarize:\nserved %+v\ndirect %+v", served, want)
	}

	fromRegistry, err := study.CubeQueryDirect(filter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(served, fromRegistry) {
		t.Fatalf("CubeQueryDirect differs from CubeQuery:\n%+v\n%+v", served, fromRegistry)
	}

	if _, err := study.CubeQuery(map[string]string{"region": "atlantis"}); !errors.Is(err, ErrNoCubeCell) {
		t.Fatalf("missing cell: err = %v", err)
	}
	if _, err := study.CubeQueryDirect(map[string]string{"zone": "x"}); !errors.Is(err, ErrNoCubeCell) {
		t.Fatalf("non-cube dimension: err = %v", err)
	}

	info := study.CubeInfo()
	if !info.Built || info.Cells <= 0 || info.SizeBytes <= 0 {
		t.Fatalf("CubeInfo = %+v", info)
	}
	if !reflect.DeepEqual(info.Dims, []string{"region", "lob"}) {
		t.Fatalf("CubeInfo.Dims = %v", info.Dims)
	}

	// A cube-less study reports an unbuilt cube.
	plain := NewStudy(smallConfig(3))
	if info := plain.CubeInfo(); info.Built {
		t.Fatal("unbuilt study reports a cube")
	}
}
