package risk

import (
	"context"
	"sync"
	"testing"
	"time"
)

// An invalid contract index must be rejected before lazy stage-1
// initialization — the pre-fix behavior generated the catalogue, every
// ELT, and the loss index (seconds of work at production scale) before
// noticing the request was doomed.
func TestPriceContractFailFastInvalidContract(t *testing.T) {
	study := NewStudy(smallConfig(20))
	start := time.Now()
	if _, err := study.PriceContract(context.Background(), 99, 1000); err == nil {
		t.Fatal("out-of-range contract should error")
	}
	if _, err := study.PriceContract(context.Background(), -1, 1000); err == nil {
		t.Fatal("negative contract should error")
	}
	if study.p != nil {
		t.Fatal("invalid contract triggered pipeline initialization")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("fail-fast validation took %v", d)
	}
}

// An invalid kernel must be rejected before stage 1 runs and before a
// fresh quote YELT is generated (pre-fix it was validated only after
// both).
func TestPriceContractFailFastInvalidKernel(t *testing.T) {
	cfg := smallConfig(21)
	cfg.Kernel = "warp-speed"
	study := NewStudy(cfg)
	if _, err := study.PriceContract(context.Background(), 0, 1000); err == nil {
		t.Fatal("unknown kernel should error")
	}
	if study.p != nil {
		t.Fatal("invalid kernel triggered pipeline initialization")
	}
}

// RunModelling then a full Run must execute stage 1 exactly once and
// report exactly one line per stage — the serving-tier lifecycle
// (warm-up, then the portfolio report on demand).
func TestRunModellingThenRunReportsEachStageOnce(t *testing.T) {
	study := NewStudy(smallConfig(22))
	if err := study.RunModelling(context.Background()); err != nil {
		t.Fatal(err)
	}
	cat := study.p.Catalog
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if study.p.Catalog != cat {
		t.Fatal("Run re-executed stage 1 after RunModelling")
	}
	counts := map[string]int{}
	for _, st := range rep.Stages {
		counts[st.Name]++
	}
	for _, name := range []string{"risk-modelling", "loss-index", "portfolio-risk", "dfa"} {
		if counts[name] != 1 {
			t.Fatalf("stage %q has %d report lines, want 1 (stages: %+v)", name, counts[name], rep.Stages)
		}
	}
	if len(rep.Stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(rep.Stages))
	}
}

// WarmQuotes must build every per-contract layout up front, and quotes
// afterwards must reuse exactly those cached layouts.
func TestWarmQuotesPrebuildsLayouts(t *testing.T) {
	study := NewStudy(smallConfig(23))
	if err := study.WarmQuotes(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(study.quoteFlat); n != study.NumContracts() {
		t.Fatalf("warmed %d contracts, want %d", n, study.NumContracts())
	}
	idx0, flat0 := study.quoteIdx[0], study.quoteFlat[0]
	q, err := study.PriceContract(context.Background(), 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if q.AAL <= 0 {
		t.Fatal("warm quote should have positive AAL")
	}
	if study.quoteIdx[0] != idx0 || study.quoteFlat[0] != flat0 {
		t.Fatal("quote rebuilt a layout WarmQuotes had cached")
	}
}

func TestNumContractsDefaults(t *testing.T) {
	if n := NewStudy(Config{}).NumContracts(); n != DefaultConfig().Contracts {
		t.Fatalf("zero config NumContracts = %d, want default %d", n, DefaultConfig().Contracts)
	}
	if n := NewStudy(smallConfig(1)).NumContracts(); n != 3 {
		t.Fatalf("NumContracts = %d, want 3", n)
	}
}

// The serving-tier concurrency contract: after warm-up, concurrent
// PriceContract calls across contracts may overlap one full Run.
// Quotes must stay deterministic throughout (run with -race in CI).
func TestConcurrentQuotesDuringRun(t *testing.T) {
	study := NewStudy(smallConfig(24))
	if err := study.WarmQuotes(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref := make([]*Quote, study.NumContracts())
	for c := range ref {
		q, err := study.PriceContract(context.Background(), c, 1000)
		if err != nil {
			t.Fatal(err)
		}
		ref[c] = q
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := study.Run(context.Background()); err != nil {
			errc <- err
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				c := i % study.NumContracts()
				q, err := study.PriceContract(context.Background(), c, 1000)
				if err != nil {
					errc <- err
					return
				}
				if q.AAL != ref[c].AAL || q.TVaR99 != ref[c].TVaR99 {
					errc <- errNondeterministic(c)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type errNondeterministic int

func (e errNondeterministic) Error() string {
	return "concurrent quote diverged from reference for contract " + string(rune('0'+int(e)))
}
