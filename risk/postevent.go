package risk

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/postevent"
)

// EventBulletin describes a realized catastrophe for rapid post-event
// estimation (the operational workflow of the authors' companion
// paper on rapid post-event modelling).
type EventBulletin struct {
	// Peril is one of "EQ", "HU", "FL", "WS", "TO".
	Peril    string
	Lat, Lon float64
	// Magnitude is peril-specific: moment magnitude for EQ, max wind
	// speed (m/s) for HU/WS, depth (m) for FL, EF-scale for TO.
	Magnitude float64
	RadiusKm  float64
}

func (b EventBulletin) peril() (catalog.Peril, error) {
	switch b.Peril {
	case "EQ":
		return catalog.Earthquake, nil
	case "HU":
		return catalog.Hurricane, nil
	case "FL":
		return catalog.Flood, nil
	case "WS":
		return catalog.WinterStorm, nil
	case "TO":
		return catalog.Tornado, nil
	default:
		return 0, fmt.Errorf("risk: unknown peril %q", b.Peril)
	}
}

// EventEstimate is a rapid loss estimate for a realized event.
type EventEstimate struct {
	SitesTouched int
	ExposedValue float64
	GrossMean    float64
	GrossSD      float64
	Low, High    float64 // 90% band
	Elapsed      time.Duration
}

// EstimateEvent prices a realized event against the study's book in
// real time. Stage 1 must have run (Run or RunModelling); the
// estimator is built lazily on first call and reused.
func (s *Study) EstimateEvent(ctx context.Context, b EventBulletin) (*EventEstimate, error) {
	p, err := s.pipeline()
	if err != nil {
		return nil, err
	}
	if p.Catalog == nil {
		if err := p.RunStage1(ctx); err != nil {
			return nil, err
		}
	}
	if s.postEvent == nil {
		est, err := postevent.New(p.Exposures, nil)
		if err != nil {
			return nil, err
		}
		s.postEvent = est
	}
	peril, err := b.peril()
	if err != nil {
		return nil, err
	}
	if b.RadiusKm <= 0 {
		return nil, fmt.Errorf("risk: bulletin radius %g must be positive", b.RadiusKm)
	}
	res, err := s.postEvent.Estimate(ctx, catalog.Event{
		ID: 0, Peril: peril, Lat: b.Lat, Lon: b.Lon,
		Magnitude: b.Magnitude, RadiusKm: b.RadiusKm,
	})
	if err != nil {
		return nil, err
	}
	return &EventEstimate{
		SitesTouched: res.SitesTouched,
		ExposedValue: res.ExposedValue,
		GrossMean:    res.GrossMean,
		GrossSD:      res.GrossSD,
		Low:          res.Low,
		High:         res.High,
		Elapsed:      res.Elapsed,
	}, nil
}
