package risk

import (
	"context"
	"testing"
)

func smallConfig(seed uint64) Config {
	return Config{
		Seed:                 seed,
		Events:               600,
		Contracts:            3,
		LocationsPerContract: 80,
		Trials:               1500,
		MeanEventsPerYear:    10,
		Rho:                  0.2,
	}
}

func TestStudyRun(t *testing.T) {
	study := NewStudy(smallConfig(1))
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 4 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	if rep.Catastrophe.AAL <= 0 {
		t.Fatal("cat AAL should be positive")
	}
	if rep.Catastrophe.TVaR99 < rep.Catastrophe.VaR99 {
		t.Fatal("TVaR < VaR")
	}
	if len(rep.Catastrophe.ReturnPeriods) == 0 {
		t.Fatal("no return periods")
	}
	if rp, ok := rep.Catastrophe.ReturnPeriods[100]; !ok || rp.AEP <= 0 {
		t.Fatalf("100-year AEP missing or zero: %+v", rep.Catastrophe.ReturnPeriods)
	}
}

// The reinstatements engine must run end to end through the public
// API, and the kernel choice — blocked SoA (default), flat, or
// indexed — must not change a single trial loss for any engine it is
// threaded to.
func TestStudyReinstatementsEngineAndKernels(t *testing.T) {
	kernels := []KernelKind{KernelBlocked, KernelFlat, KernelIndexed}
	losses := map[KernelKind][]float64{}
	for _, kern := range kernels {
		cfg := smallConfig(7)
		cfg.Engine = EngineReinstatements
		cfg.Sampling = true
		cfg.Kernel = kern
		study := NewStudy(cfg)
		rep, err := study.Run(context.Background())
		if err != nil {
			t.Fatalf("kernel %q: %v", kern, err)
		}
		if rep.Catastrophe.AAL <= 0 {
			t.Fatalf("kernel %q: cat AAL should be positive", kern)
		}
		l, err := study.CatastropheLosses()
		if err != nil {
			t.Fatal(err)
		}
		losses[kern] = l
	}
	for _, kern := range kernels[1:] {
		for i := range losses[KernelBlocked] {
			if losses[KernelBlocked][i] != losses[kern][i] {
				t.Fatalf("trial %d differs between kernels blocked and %q", i, kern)
			}
		}
	}
}

func TestStudyRejectsUnknownKernel(t *testing.T) {
	cfg := smallConfig(8)
	cfg.Kernel = "warp-speed"
	if _, err := NewStudy(cfg).Run(context.Background()); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestLossesAccessors(t *testing.T) {
	study := NewStudy(smallConfig(2))
	if _, err := study.CatastropheLosses(); err == nil {
		t.Fatal("losses before Run should error")
	}
	if _, err := study.EnterpriseLosses(); err == nil {
		t.Fatal("losses before Run should error")
	}
	if _, err := study.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cat, err := study.CatastropheLosses()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 1500 {
		t.Fatalf("cat losses = %d", len(cat))
	}
	ent, err := study.EnterpriseLosses()
	if err != nil {
		t.Fatal(err)
	}
	if len(ent) != 1500 {
		t.Fatalf("enterprise losses = %d", len(ent))
	}
	// Accessors must return copies.
	cat[0] = -12345
	cat2, _ := study.CatastropheLosses()
	if cat2[0] == -12345 {
		t.Fatal("CatastropheLosses leaked internal state")
	}
}

func TestPriceContract(t *testing.T) {
	study := NewStudy(smallConfig(3))
	q, err := study.PriceContract(context.Background(), 0, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if q.Trials != 20_000 {
		t.Fatalf("trials = %d", q.Trials)
	}
	if q.AAL < 0 || q.Premium < q.AAL {
		t.Fatalf("quote inconsistent: %+v", q)
	}
	if q.Elapsed <= 0 {
		t.Fatal("no timing")
	}
	if _, err := study.PriceContract(context.Background(), 99, 1000); err == nil {
		t.Fatal("out-of-range contract should error")
	}
}

func TestEngineKinds(t *testing.T) {
	for _, k := range []EngineKind{EngineSequential, EngineParallel, EngineChunked, EngineNaive, EngineMapReduce, ""} {
		if _, err := k.engine(); err != nil {
			t.Errorf("engine %q: %v", k, err)
		}
	}
	if _, err := EngineKind("warp-drive").engine(); err == nil {
		t.Fatal("unknown engine should error")
	}
}

func TestSequentialEngineStudy(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Engine = EngineSequential
	rep, err := NewStudy(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(4)
	cfg2.Engine = EngineParallel
	rep2, err := NewStudy(cfg2).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Catastrophe.AAL != rep2.Catastrophe.AAL {
		t.Fatal("engines disagree through the public API")
	}
}

func TestIntegrateEnterprise(t *testing.T) {
	study := NewStudy(smallConfig(5))
	if _, err := study.IntegrateEnterprise(context.Background(), nil, 0.2); err == nil {
		t.Fatal("integrate before Run should error")
	}
	if _, err := study.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := study.IntegrateEnterprise(context.Background(), nil, 0.2); err == nil {
		t.Fatal("nil sources should error")
	}
}

func TestRunModellingOnly(t *testing.T) {
	study := NewStudy(smallConfig(6))
	if err := study.RunModelling(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := study.RunModelling(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pricing works with modelling only.
	if _, err := study.PriceContract(context.Background(), 1, 5000); err != nil {
		t.Fatal(err)
	}
}
